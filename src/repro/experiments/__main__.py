"""Command-line entry point for regenerating paper figures.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run fig07 --tasks 200 --batches 2 --seed 0
    python -m repro.experiments run fig17 --datasets chengdu normal
    python -m repro.experiments stream --arrivals poisson --methods PUCE UCE
    python -m repro.experiments stream --methods "PDCE(ppcf=off)" UCE
    python -m repro.experiments stream --shards 4 --parallel process --adaptive
    python -m repro.experiments scenario examples/scenario_rush_hour.json
    python -m repro.experiments scenario spec.json --seed 11 --save-spec spec11.json
    python -m repro.experiments stream --trace --trace-out run.jsonl
    python -m repro.experiments scenario spec.json --metrics-out metrics.prom
    python -m repro.experiments profile examples/scenario_duty_cycle.json
    python -m repro.experiments serve --queue-limit 32 < requests.jsonl

The streaming subcommands are thin shells over the service facade:
``stream`` assembles a :class:`repro.api.ScenarioSpec` from flags,
``scenario`` loads one from a JSON artifact, ``profile`` loads one and
forces tracing on to print a per-phase flame-style summary
(:func:`repro.obs.format_profile`) — all run through
:meth:`~repro.api.ScenarioSpec.run`, so a flag-built run and its saved
spec reproduce each other exactly.  ``--trace-out`` dumps the span tree
as JSONL; ``--metrics-out`` writes Prometheus text exposition; both
imply ``--trace``.
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.api.options import COMPOSITION_RULES, SolveOptions
from repro.api.scenario import ScenarioSpec
from repro.errors import ReproError
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.report import format_figure
from repro.experiments.streaming import ARRIVAL_KINDS, format_stream_report
from repro.obs import format_profile, write_metrics_prometheus, write_trace_jsonl


def _shards_arg(value: str) -> "int | str":
    """``--shards`` accepts an integer slot count or the literal ``auto``."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _add_obs_flags(
    parser: argparse.ArgumentParser, with_trace_flag: bool = True
) -> None:
    """The shared observability flags of the streaming subcommands."""
    if with_trace_flag:
        parser.add_argument(
            "--trace",
            action="store_true",
            default=False,
            help="record per-flush span trees (phase breakdowns in the report)",
        )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="dump the recorded spans as JSONL (implies --trace)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the run's metrics as Prometheus text exposition",
    )


def _run_serve(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The ``serve`` subcommand: a JSONL dispatch service on stdio."""
    import asyncio
    import sys

    from repro.service import DispatchService, ServiceConfig, serve_jsonl

    try:
        config = ServiceConfig(
            max_sessions=args.max_sessions,
            queue_limit=args.queue_limit,
            backpressure_ratio=args.backpressure_ratio or None,
            tenant_budget=args.tenant_budget,
            cache_entries=args.cache_entries,
            cache_bytes=args.cache_bytes or None,
            snapshot_path=args.snapshot,
            journal_dir=args.journal_dir,
        )
    except ReproError as exc:
        parser.error(str(exc))

    def emit(line: str) -> None:
        print(line, flush=True)

    async def run() -> int:
        service = DispatchService(config)
        try:
            if config.journal_dir is not None:
                recovered = await service.recover()
                if recovered:
                    print(
                        f"recovered {len(recovered)} tenant session(s) "
                        f"from {config.journal_dir}",
                        file=sys.stderr,
                    )
            served = await serve_jsonl(service, sys.stdin, emit)
        finally:
            await service.close()
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(service.render_metrics())
            print(f"metrics: prometheus text -> {args.metrics_out}", file=sys.stderr)
        print(f"serve: {served} requests handled", file=sys.stderr)
        return 0

    return asyncio.run(run())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible figure groups")

    run = sub.add_parser("run", help="regenerate one figure group")
    run.add_argument("figure", choices=sorted(FIGURES))
    run.add_argument("--tasks", type=int, default=200, help="tasks per batch (paper: 1000)")
    run.add_argument("--batches", type=int, default=2, help="batches per sweep point")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--datasets", nargs="+", default=None, help="restrict datasets")

    stream = sub.add_parser(
        "stream", help="run methods over a continuous-time arrival stream"
    )
    stream.add_argument("--arrivals", choices=ARRIVAL_KINDS, default="poisson")
    stream.add_argument("--dataset", default="normal", help="spatial law for locations")
    stream.add_argument(
        "--methods",
        nargs="+",
        default=["PUCE", "UCE"],
        help='Table IX names or method specs like "PDCE(ppcf=off)"',
    )
    stream.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="stream length in time units (default 3; trace: clips the 24h day, default 24)",
    )
    stream.add_argument(
        "--task-rate", type=float, default=40.0, help="task arrivals per time unit"
    )
    stream.add_argument(
        "--worker-rate", type=float, default=15.0, help="worker arrivals per time unit"
    )
    stream.add_argument("--initial-workers", type=int, default=60, help="fleet on duty at t=0")
    stream.add_argument("--trace-orders", type=int, default=300, help="orders per trace-driven day")
    stream.add_argument("--deadline", type=float, default=1.0, help="task patience before expiry")
    stream.add_argument(
        "--worker-budget", type=float, default=40.0, help="per-worker shift budget cap"
    )
    stream.add_argument(
        "--departures",
        type=float,
        default=0.0,
        help="probability each worker departs mid-stream (worker churn; "
        "idle leavers vanish, busy ones finish their task and never "
        "rejoin)",
    )
    stream.add_argument(
        "--window-seconds",
        type=float,
        default=None,
        help="sliding-window privacy accounting: budget caps apply to the "
        "spend inside the trailing window instead of the whole run "
        "(default: lifetime global accounting)",
    )
    stream.add_argument(
        "--window-budget",
        type=float,
        default=None,
        help="per-worker epsilon cap inside each window (requires "
        "--window-seconds; default: the worker's own budget cap)",
    )
    stream.add_argument(
        "--window-composition",
        choices=COMPOSITION_RULES,
        default="sequential",
        help="window composition rule: 'sequential' sums in-window spends, "
        "'tree' charges the binary-mechanism level bound",
    )
    stream.add_argument(
        "--window-decay",
        type=float,
        default=None,
        help="down-weight releases as they age across the window: a spend "
        "counts eps * decay^(age/window) until it leaves (0 < decay < 1, "
        "sequential composition only)",
    )
    stream.add_argument(
        "--timeline-limit",
        type=int,
        default=None,
        help="cap StreamStats timeline growth: decimate to this many "
        "points once exceeded (endpoints kept; default: unbounded)",
    )
    stream.add_argument("--max-batch", type=int, default=50, help="micro-batch flush size")
    stream.add_argument("--max-wait", type=float, default=0.2, help="micro-batch flush wait")
    stream.add_argument(
        "--shards",
        type=_shards_arg,
        default="auto",
        help="conflict-free shard slots per flush: an integer forces the "
        "slot count, 'auto' (default) lets the cost model plan each flush",
    )
    stream.add_argument(
        "--parallel",
        choices=("off", "thread", "process"),
        default="off",
        help="how to execute shard groups ('off' under --shards auto lets "
        "the planner pick; a forced --shards N pins the mode)",
    )
    stream.add_argument(
        "--adaptive",
        action="store_true",
        help="adapt the flush size to observed flush service times",
    )
    stream.add_argument(
        "--target-flush-seconds",
        type=float,
        default=0.02,
        help="adaptive controller's per-flush solver-time target",
    )
    stream.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=False,
        help="enable the flush-fingerprint solver cache (bit-identical; "
        "recurring flushes skip the solve)",
    )
    stream.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="disable the flush-fingerprint solver cache (the default)",
    )
    stream.add_argument(
        "--no-workspace",
        dest="workspace",
        action="store_false",
        default=True,
        help="allocate fresh engine buffers per flush instead of reusing "
        "the workspace arena",
    )
    stream.add_argument(
        "--flush-timeout",
        type=float,
        default=None,
        help="watchdog deadline (seconds) for pooled flush solves; a "
        "timed-out flush retries down the degradation ladder "
        "(bit-identical, just slower)",
    )
    stream.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="deterministic fault injection: 'smoke' for the built-in "
        'plan, or a JSON object like \'{"seed": 7, "rates": '
        '{"pool_crash": 0.1}}\'',
    )
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--save-spec",
        metavar="PATH",
        default=None,
        help="also write the run as a reusable scenario JSON artifact",
    )
    _add_obs_flags(stream)

    scenario = sub.add_parser(
        "scenario", help="run a declarative scenario JSON artifact"
    )
    scenario.add_argument("spec", help="path to a ScenarioSpec JSON file")
    scenario.add_argument(
        "--seed", type=int, default=None, help="override the spec's options.seed"
    )
    scenario.add_argument(
        "--save-spec",
        metavar="PATH",
        default=None,
        help="write the (seed-resolved) spec back out as JSON",
    )
    _add_obs_flags(scenario)

    profile = sub.add_parser(
        "profile",
        help="run a scenario with tracing forced on and print the "
        "per-phase flame-style summary",
    )
    profile.add_argument("spec", help="path to a ScenarioSpec JSON file")
    profile.add_argument(
        "--seed", type=int, default=None, help="override the spec's options.seed"
    )
    _add_obs_flags(profile, with_trace_flag=False)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant dispatch service over stdin/stdout JSONL "
        '(one {"tenant": ..., "request": ...} envelope per line)',
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=10_000,
        help="open tenant sessions held at once before shedding opens",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="per-tenant inbound queue depth before task submits shed",
    )
    serve.add_argument(
        "--backpressure-ratio",
        type=float,
        default=4.0,
        help="shed task submits while observed flush time exceeds this "
        "multiple of the target (0 disables)",
    )
    serve.add_argument(
        "--tenant-budget",
        type=float,
        default=None,
        help="per-tenant cumulative privacy-spend cap (default: none)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        help="shared flush-cache entry bound",
    )
    serve.add_argument(
        "--cache-bytes",
        type=int,
        default=256 * 2**20,
        help="shared flush-cache byte bound (0 disables the byte bound)",
    )
    serve.add_argument(
        "--snapshot",
        metavar="PATH",
        default=None,
        help="persist the shared cache here (loaded on start, saved on exit)",
    )
    serve.add_argument(
        "--journal-dir",
        metavar="DIR",
        default=None,
        help="crash-safe per-tenant journals: accepted requests are "
        "written ahead here, and open sessions are recovered from it "
        "on start",
    )
    serve.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the service metrics as Prometheus text on exit",
    )

    args = parser.parse_args(argv)
    if args.command == "serve":
        return _run_serve(args, parser)
    if args.command == "list":
        for figure_id, spec in sorted(FIGURES.items()):
            papers = ", ".join(spec.paper_figures.values())
            print(f"{figure_id}: {spec.measure} vs {spec.parameter}  ({papers})")
        return 0

    if args.command in ("stream", "scenario", "profile"):
        if args.command == "stream":
            spec = ScenarioSpec(
                arrivals=args.arrivals,
                dataset=args.dataset,
                horizon=args.horizon,
                task_rate=args.task_rate,
                worker_rate=args.worker_rate,
                initial_workers=args.initial_workers,
                trace_orders=args.trace_orders,
                task_deadline=args.deadline,
                worker_budget=args.worker_budget,
                departures=args.departures,
                methods=tuple(args.methods),
                options=SolveOptions(
                    seed=args.seed,
                    max_batch_size=args.max_batch,
                    max_wait=args.max_wait,
                    shards=args.shards,
                    parallel=args.parallel,
                    adaptive=args.adaptive,
                    target_flush_seconds=args.target_flush_seconds,
                    cache=args.cache,
                    workspace=args.workspace,
                    trace=args.trace,
                    window_seconds=args.window_seconds,
                    window_budget=args.window_budget,
                    window_composition=args.window_composition,
                    window_decay=args.window_decay,
                    timeline_limit=args.timeline_limit,
                    flush_timeout=args.flush_timeout,
                    faults=args.faults,
                ),
            )
        else:
            try:
                spec = ScenarioSpec.from_file(args.spec)
            except (OSError, ValueError, ReproError) as exc:
                parser.error(f"cannot load scenario {args.spec!r}: {exc}")
            if args.seed is not None:
                spec = spec.with_seed(args.seed)
        want_trace = (
            args.command == "profile"
            or getattr(args, "trace", False)
            or args.trace_out is not None
        )
        if want_trace and not spec.options.trace:
            spec = dataclasses.replace(
                spec, options=spec.options.replace(trace=True)
            )
        if getattr(args, "save_spec", None):
            spec.to_file(args.save_spec)
        report = spec.run()
        if args.command == "profile":
            print(format_profile(report, title=f"profile[{spec.name}]"))
        else:
            print(format_stream_report(report, spec.to_scenario()))
        if args.trace_out:
            count = write_trace_jsonl(report, args.trace_out)
            print(f"trace: {count} spans -> {args.trace_out}")
        if args.metrics_out:
            write_metrics_prometheus(report, args.metrics_out)
            print(f"metrics: prometheus text -> {args.metrics_out}")
        return 0

    result = run_figure(
        args.figure,
        num_tasks=args.tasks,
        num_batches=args.batches,
        seed=args.seed,
        datasets=tuple(args.datasets) if args.datasets else None,
    )
    print(format_figure(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
