"""Command-line entry point for regenerating paper figures.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run fig07 --tasks 200 --batches 2 --seed 0
    python -m repro.experiments run fig17 --datasets chengdu normal
"""

from __future__ import annotations

import argparse

from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.report import format_figure


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible figure groups")

    run = sub.add_parser("run", help="regenerate one figure group")
    run.add_argument("figure", choices=sorted(FIGURES))
    run.add_argument("--tasks", type=int, default=200, help="tasks per batch (paper: 1000)")
    run.add_argument("--batches", type=int, default=2, help="batches per sweep point")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--datasets", nargs="+", default=None, help="restrict datasets")

    args = parser.parse_args(argv)
    if args.command == "list":
        for figure_id, spec in sorted(FIGURES.items()):
            papers = ", ".join(spec.paper_figures.values())
            print(f"{figure_id}: {spec.measure} vs {spec.parameter}  ({papers})")
        return 0

    result = run_figure(
        args.figure,
        num_tasks=args.tasks,
        num_batches=args.batches,
        seed=args.seed,
        datasets=tuple(args.datasets) if args.datasets else None,
    )
    print(format_figure(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
