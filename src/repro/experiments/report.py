"""Text rendering of measured figure series.

The paper reports curves; we print them as aligned tables — one row per
method, one column per sweep value — plus the paired relative-deviation
table for utility/distance figures, matching the (a)/(b) subfigure layout.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.figures import FigureResult

__all__ = ["format_series", "format_figure"]

_MEASURE_UNIT = {"time": "ms/batch", "utility": "avg utility", "distance": "avg km"}


def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(result: FigureResult, dataset: str) -> str:
    """One dataset's measured table (and deviations where defined)."""
    spec = result.spec
    labels = result.labels(dataset)
    header = [f"{spec.parameter}"] + labels
    rows = []
    for method in spec.methods:
        values = result.series(dataset, method)
        rows.append([method] + [f"{v:.3f}" for v in values])
    out = [
        f"{spec.figure_id} [{dataset}] ({result.spec.paper_figures[dataset]}): "
        f"{_MEASURE_UNIT[spec.measure]} vs {spec.parameter}",
        _table(header, rows),
    ]

    if spec.measure in ("utility", "distance"):
        dev_rows = []
        for method in spec.methods:
            try:
                deviations = result.deviation_series(dataset, method)
            except Exception:
                continue  # non-private methods have no deviation curve
            dev_rows.append([method] + [f"{v:.3f}" for v in deviations])
        if dev_rows:
            kind = "U_RD" if spec.measure == "utility" else "D_RD"
            out.append(f"relative deviation ({kind}):")
            out.append(_table(header, dev_rows))
    return "\n".join(out)


def format_figure(result: FigureResult) -> str:
    """All datasets of a figure group, separated by blank lines."""
    sections = [format_series(result, dataset) for dataset in result.points]
    expected = result.spec.expected_shape
    if expected:
        sections.append(f"paper's expected shape: {expected}")
    return "\n\n".join(sections)
