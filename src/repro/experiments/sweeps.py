"""Parameter sweeps over the Table X grid.

A :class:`SweepConfig` carries the paper's defaults (bold values of
Table X); :func:`run_sweep` varies exactly one parameter, holding the rest
fixed, running every method on the same batches per point — the structure
of every figure in Section VII-D.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.budgets import BudgetSampler
from repro.datasets.chengdu import ChengduLikeGenerator
from repro.datasets.synthetic import NormalGenerator, SyntheticGenerator, UniformGenerator
from repro.errors import ConfigurationError
from repro.simulation.runner import BatchRunner, RunReport

__all__ = ["DATASETS", "SweepConfig", "SweepPoint", "make_generator", "run_sweep"]

#: The paper's three evaluation datasets.
DATASETS: tuple[str, ...] = ("chengdu", "normal", "uniform")

#: Parameters a sweep may vary (Table X rows).
SWEEPABLE: tuple[str, ...] = (
    "worker_ratio",
    "task_value",
    "worker_range",
    "budget_interval",
)


def make_generator(
    dataset: str, num_tasks: int, num_workers: int, seed: int
) -> SyntheticGenerator:
    """Instantiate one of the paper's datasets by name."""
    if dataset == "chengdu":
        return ChengduLikeGenerator(num_tasks, num_workers, seed=seed)
    if dataset == "normal":
        return NormalGenerator(num_tasks, num_workers, seed=seed)
    if dataset == "uniform":
        return UniformGenerator(num_tasks, num_workers, seed=seed)
    raise ConfigurationError(f"unknown dataset {dataset!r}; choose from {DATASETS}")


@dataclass(frozen=True)
class SweepConfig:
    """Table X defaults plus experiment scale knobs.

    ``num_tasks`` is the per-batch task count.  The paper uses 1000; the
    generators preserve spatial density at any scale, so smaller batches
    trade noise for speed without changing the curve shapes.
    """

    dataset: str = "normal"
    methods: tuple[str, ...] = ("PUCE", "PDCE", "PGT", "UCE", "DCE", "GT", "GRD")
    num_tasks: int = 200
    worker_ratio: float = 2.0
    task_value: float = 4.5
    worker_range: float = 1.4
    budget_low: float = 0.5
    budget_high: float = 1.75
    budget_group_size: int = 7
    num_batches: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dataset not in DATASETS:
            raise ConfigurationError(
                f"unknown dataset {self.dataset!r}; choose from {DATASETS}"
            )
        if self.worker_ratio <= 0:
            raise ConfigurationError(f"worker_ratio must be > 0, got {self.worker_ratio}")

    @property
    def num_workers(self) -> int:
        return max(1, round(self.num_tasks * self.worker_ratio))

    def run(self) -> RunReport:
        """Run all methods over this configuration's batches."""
        generator = make_generator(
            self.dataset, self.num_tasks, self.num_workers, self.seed
        )
        sampler = BudgetSampler(
            low=self.budget_low,
            high=self.budget_high,
            group_size=self.budget_group_size,
        )
        instances = generator.instances(
            self.num_batches,
            task_value=self.task_value,
            worker_range=self.worker_range,
            budget_sampler=sampler,
        )
        return BatchRunner(list(self.methods)).run(instances, seed=self.seed)

    def at(self, parameter: str, value) -> "SweepConfig":
        """A copy with one sweep parameter replaced."""
        if parameter == "worker_ratio":
            return replace(self, worker_ratio=float(value))
        if parameter == "task_value":
            return replace(self, task_value=float(value))
        if parameter == "worker_range":
            return replace(self, worker_range=float(value))
        if parameter == "budget_interval":
            low, high = value
            return replace(self, budget_low=float(low), budget_high=float(high))
        raise ConfigurationError(
            f"unknown sweep parameter {parameter!r}; choose from {SWEEPABLE}"
        )


@dataclass(frozen=True)
class SweepPoint:
    """One sweep point: the parameter value and the multi-method report."""

    dataset: str
    parameter: str
    value: object
    report: RunReport

    @property
    def label(self) -> str:
        if self.parameter == "budget_interval":
            low, high = self.value
            return f"[{low:g},{high:g}]"
        return f"{self.value:g}"


def run_sweep(
    config: SweepConfig, parameter: str, values: Sequence
) -> list[SweepPoint]:
    """Vary one Table X parameter; everything else fixed at ``config``."""
    points = []
    for value in values:
        report = config.at(parameter, value).run()
        points.append(SweepPoint(config.dataset, parameter, value, report))
    return points
