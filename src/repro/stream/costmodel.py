"""Per-flush cost model + planner: *decide* the flush, don't guess it.

The sharded flush path (:mod:`repro.stream.shards`) has three execution
strategies — single-unit direct solve, sequential sharded, and
process-parallel sharded (pickle or shared-memory transport) — whose
results are bit-identical by construction (the cut, not the execution
mode, defines every noise stream).  Which one is *fastest* depends on
the flush: micro-flushes are dominated by fixed costs, large
multi-component flushes by per-pair solve work that parallelism can
split.  This module makes that choice explicit:

* :class:`FlushCostModel` expresses the per-flush cost **symbolically**
  as a sum of ``constant * multiplier(pairs, units, shards, cores)``
  terms per phase — cut / build / solve / merge, mirroring the
  ``FlushRecord.phase_seconds`` taxonomy — so one definition serves both
  prediction (evaluate the terms) and calibration (the terms are the
  least-squares design matrix).
* The constants carry baked-in defaults measured by
  ``benchmarks/bench_shard_transport.py``; :meth:`FlushCostModel.fit`
  re-fits them from observed ``(features, seconds)`` samples and
  :meth:`FlushCostModel.from_bench_dir` seeds them from committed
  ``BENCH_*.json`` artifacts.
* :class:`FlushPlanner` turns the model into a per-flush decision
  (:class:`FlushPlan`): mode, execution-slot count, and transport —
  or a *forced* plan when the user pinned ``shards``/``parallel``.

The planner only ever chooses among result-identical strategies, so a
wrong prediction costs time, never correctness.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_CONSTANTS",
    "PLAN_MODES",
    "SHM_MIN_PAIRS",
    "FlushCostModel",
    "FlushPlan",
    "FlushPlanner",
    "geomean_ratio",
]

#: Execution strategies a plan can name.  ``"unsharded"`` is the
#: single-unit direct solve (no slice/rebuild/merge); ``"seq"`` solves
#: the cut units sequentially in-process; ``"thread"``/``"process"``
#: fan unit groups out to a pool.
PLAN_MODES = ("unsharded", "seq", "thread", "process")

#: Flushes below this many pairs never use the shared-memory transport:
#: staging has a fixed cost and tiny flushes fit in a cheap pickle.
SHM_MIN_PAIRS = 256

#: Calibration constants (seconds), measured on the benchmark host by
#: ``bench_shard_transport.py``'s probe stage and rounded.  Every term
#: the model can emit appears here; :meth:`FlushCostModel.fit` replaces
#: any subset from live samples.
DEFAULT_CONSTANTS: dict[str, float] = {
    # planning + cutting
    "plan_fixed": 2.7e-5,        # planner decision per flush
    "cut_micro_fixed": 3.4e-5,   # micro-flush cut shortcut (no union-find)
    "cut_fixed": 2.2e-4,         # full grid/union-find cut
    "cut_per_pair": 3.8e-6,
    # sub-instance assembly (pickle / sequential path, main process)
    "build_unit_fixed": 4.2e-5,
    "build_per_pair": 7.9e-7,
    # engine work
    "solve_unit_fixed": 2.5e-4,  # per independent engine episode
    "solve_per_pair": 8.0e-6,
    # merging per-shard results
    "merge_fixed": 5.1e-6,
    "merge_unit_fixed": 1.2e-5,
    # pool transport
    "dispatch_fixed": 7.3e-4,    # per submitted group (pool round-trip)
    "pickle_per_pair": 3.6e-5,   # sub-instance pickle + unpickle
    "shm_fixed": 1.2e-4,         # stage planes + attach-side view rebuild
    "shm_per_pair": 4.2e-5,      # bytes copy into the segment
}


def geomean_ratio(
    predicted: Sequence[float], measured: Sequence[float]
) -> float:
    """Geometric mean of ``max(p/m, m/p)`` — the calibration error.

    Symmetric (over- and under-prediction count alike) and scale-free;
    1.0 is a perfect model, and the acceptance bar is "within geomean
    factor 2".  Pairs where either side is non-positive are skipped
    (cache hits, clock underflow).
    """
    ratios = [
        max(p / m, m / p)
        for p, m in zip(predicted, measured)
        if p > 0.0 and m > 0.0
    ]
    if not ratios:
        return math.inf
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


class FlushCostModel:
    """Symbolic per-flush cost in ``(pairs, units, shards, cores)``.

    ``constants`` maps term names (:data:`DEFAULT_CONSTANTS`) to seconds;
    :meth:`phase_terms` emits, per phase, the *multiplier* of each
    constant for a given flush shape — the symbolic form — and
    :meth:`predict` evaluates it.  Linear-in-the-constants by design:
    calibration is one least-squares solve (:meth:`fit`).
    """

    __slots__ = ("constants",)

    def __init__(self, constants: Mapping[str, float] | None = None) -> None:
        merged = dict(DEFAULT_CONSTANTS)
        if constants:
            unknown = sorted(set(constants) - set(merged))
            if unknown:
                raise ConfigurationError(
                    f"unknown cost-model constant(s) {unknown}; "
                    f"valid: {sorted(merged)}"
                )
            for name, value in constants.items():
                merged[name] = float(value)
        self.constants = merged

    # -- the symbolic layer -------------------------------------------------

    def phase_terms(
        self,
        mode: str,
        pairs: int,
        units: int,
        shards: int = 1,
        cores: int = 1,
        transport: str = "inline",
        min_shard_pairs: int = 192,
    ) -> dict[str, dict[str, float]]:
        """Per-phase ``{constant: multiplier}`` terms for one flush shape.

        The returned mapping *is* the model: phase cost =
        ``sum(constants[c] * m for c, m in terms[phase].items())``.
        ``shards`` is the execution-slot count (parallel width),
        ``units`` the number of cut components; ``transport`` applies to
        ``mode="process"`` only (``"pickle"`` or ``"shm"``).
        """
        if mode not in PLAN_MODES:
            raise ConfigurationError(
                f"unknown plan mode {mode!r}; choose from {PLAN_MODES}"
            )
        pairs = max(int(pairs), 0)
        units = max(int(units), 1)
        terms: dict[str, dict[str, float]] = {"plan": {"plan_fixed": 1.0}}
        if pairs <= min_shard_pairs:
            terms["cut"] = {"cut_micro_fixed": 1.0}
        else:
            terms["cut"] = {"cut_fixed": 1.0, "cut_per_pair": float(pairs)}

        solve = {
            "solve_unit_fixed": float(units),
            "solve_per_pair": float(pairs),
        }
        if mode == "unsharded":
            # Single-unit direct solve: no sub-instance, no merge.
            terms["solve"] = solve
            return terms

        build = {
            "build_unit_fixed": float(units),
            "build_per_pair": float(pairs),
        }
        merge = {"merge_fixed": 1.0, "merge_unit_fixed": float(units)}
        if mode in ("seq", "thread"):
            # Threads serialize on the GIL for this CPU-bound work: the
            # model credits them no speedup, only dispatch overhead.
            terms["build"] = build
            if mode == "thread":
                groups = min(max(shards, 1), units)
                solve = dict(solve)
                solve["dispatch_fixed"] = float(groups)
            terms["solve"] = solve
            terms["merge"] = merge
            return terms

        # mode == "process"
        groups = min(max(shards, 1), units)
        speedup = float(min(max(shards, 1), max(cores, 1), units))
        solve_scaled = {name: mult / speedup for name, mult in solve.items()}
        solve_scaled["dispatch_fixed"] = float(groups)
        if transport == "shm":
            # Workers rebuild sub-instances from attached views, so the
            # build rides inside the parallel section; the main process
            # pays only the staging copy.
            solve_scaled["shm_fixed"] = 1.0
            solve_scaled["shm_per_pair"] = float(pairs)
            for name, mult in build.items():
                solve_scaled[name] = solve_scaled.get(name, 0.0) + mult / speedup
        else:
            terms["build"] = build
            solve_scaled["pickle_per_pair"] = float(pairs)
        terms["solve"] = solve_scaled
        terms["merge"] = merge
        return terms

    def predict_phases(self, *args, **kwargs) -> dict[str, float]:
        """Per-phase predicted seconds (:meth:`phase_terms` evaluated)."""
        constants = self.constants
        return {
            phase: sum(constants[name] * mult for name, mult in term.items())
            for phase, term in self.phase_terms(*args, **kwargs).items()
        }

    def predict(self, *args, **kwargs) -> float:
        """Total predicted flush seconds for one flush shape."""
        return sum(self.predict_phases(*args, **kwargs).values())

    def max_pairs_within(self, target_seconds: float) -> float:
        """Largest single-unit flush (pairs) predicted to fit ``target``.

        The adaptive batch controller's forward-looking cap: inverts the
        cheapest mode's cost (unsharded: fixed plan/cut/solve costs plus
        ``solve_per_pair`` per pair) at the target.  Returns 0.0 when
        even an empty flush would blow the budget.
        """
        constants = self.constants
        fixed = (
            constants["plan_fixed"]
            + constants["cut_micro_fixed"]
            + constants["solve_unit_fixed"]
        )
        per_pair = max(constants["solve_per_pair"], 1e-12)
        return max(0.0, (target_seconds - fixed) / per_pair)

    # -- calibration --------------------------------------------------------

    def fit(
        self, samples: Sequence[tuple[Mapping[str, float], float]]
    ) -> "FlushCostModel":
        """A new model with constants least-squares-fit to ``samples``.

        Each sample is ``(features, measured_seconds)`` where
        ``features`` maps constant names to multipliers — exactly the
        flattened output of :meth:`phase_terms`, so calibration rows come
        straight from observed flushes.  Constants that never appear in
        any sample keep their current value; fitted values are clamped
        non-negative (a negative coefficient is noise, not physics).
        """
        if not samples:
            return FlushCostModel(self.constants)
        names = sorted({name for features, _ in samples for name in features})
        if not names:
            return FlushCostModel(self.constants)
        matrix = np.zeros((len(samples), len(names)))
        target = np.zeros(len(samples))
        for row, (features, seconds) in enumerate(samples):
            target[row] = seconds
            for col, name in enumerate(names):
                matrix[row, col] = features.get(name, 0.0)
        solution, *_ = np.linalg.lstsq(matrix, target, rcond=None)
        fitted = dict(self.constants)
        for name, value in zip(names, solution):
            if np.isfinite(value) and value > 0.0:
                fitted[name] = float(value)
        return FlushCostModel(fitted)

    @staticmethod
    def flatten_terms(terms: Mapping[str, Mapping[str, float]]) -> dict[str, float]:
        """Collapse per-phase terms into one feature row (for :meth:`fit`)."""
        flat: dict[str, float] = {}
        for term in terms.values():
            for name, mult in term.items():
                flat[name] = flat.get(name, 0.0) + mult
        return flat

    @classmethod
    def from_bench_dir(cls, path: str | Path) -> "FlushCostModel":
        """Seed constants from committed bench JSONs in ``path``.

        Priority order: a ``BENCH_shards.json`` written by the
        self-calibration bench carries a full ``constants`` mapping;
        otherwise ``BENCH_core.json`` (vectorized pairs/sec →
        ``solve_per_pair``) and ``BENCH_flush.json`` (per-flush reuse
        overhead → ``solve_unit_fixed``) scale the defaults to the host.
        Missing files leave the defaults untouched.
        """
        path = Path(path)
        overrides: dict[str, float] = {}
        shards_json = path / "BENCH_shards.json"
        if shards_json.is_file():
            data = json.loads(shards_json.read_text())
            constants = data.get("constants", {})
            overrides.update(
                {k: float(v) for k, v in constants.items() if k in DEFAULT_CONSTANTS}
            )
            return cls(overrides)
        core_json = path / "BENCH_core.json"
        if core_json.is_file():
            rows = json.loads(core_json.read_text()).get("rows", [])
            rates = [
                r["vectorized_pairs_per_sec"]
                for r in rows
                if r.get("vectorized_pairs_per_sec", 0) > 0
            ]
            if rates:
                geomean = math.exp(sum(math.log(r) for r in rates) / len(rates))
                overrides["solve_per_pair"] = 1.0 / geomean
        flush_json = path / "BENCH_flush.json"
        if flush_json.is_file():
            rows = json.loads(flush_json.read_text()).get("rows", [])
            reuse = [
                r["reuse_us"] * 1e-6
                for r in rows
                if r.get("metric") == "flush_total" and r.get("reuse_us", 0) > 0
            ]
            if reuse:
                overrides["solve_unit_fixed"] = min(reuse) / 2.0
        return cls(overrides)


@dataclass(frozen=True, slots=True)
class FlushPlan:
    """One flush's chosen execution strategy (a pure perf decision).

    ``shards`` is the execution-slot count (1 unless parallel);
    ``transport`` is ``"inline"`` (no pool), ``"pickle"``, or ``"shm"``;
    ``predicted_seconds`` is the model's estimate for the chosen mode
    (recorded in :class:`~repro.stream.metrics.FlushRecord` so the
    calibration error is measurable on real runs).
    """

    mode: str
    shards: int = 1
    transport: str = "inline"
    predicted_seconds: float = 0.0

    @property
    def label(self) -> str:
        """Compact report form: ``uns`` / ``seq`` / ``proc:4+shm``."""
        short = {"unsharded": "uns", "seq": "seq", "thread": "thr", "process": "proc"}
        label = short.get(self.mode, self.mode)
        if self.mode in ("thread", "process"):
            label = f"{label}:{self.shards}"
        if self.transport == "shm":
            label = f"{label}+shm"
        return label


class FlushPlanner:
    """Choose a :class:`FlushPlan` per flush from the cost model.

    ``parallel="off"`` leaves the planner free; ``"thread"``/
    ``"process"`` restrict multi-unit flushes to that pool family (the
    planner still sizes the slot count).  ``forced_shards`` pins the
    slot count entirely — the planner then only resolves the transport
    and predicts, which is how pinned ``shards=N`` configs still get
    ``predicted_seconds`` on their records.

    The decision is a pure function of ``(pairs, units, cores,
    constants)`` — deterministic on a given host — and only ever picks
    among result-identical strategies.
    """

    def __init__(
        self,
        model: FlushCostModel | None = None,
        cores: int | None = None,
        min_shard_pairs: int = 192,
        parallel: str = "off",
        forced_shards: int | None = None,
        max_workers: int | None = None,
        shm_ok: bool = True,
    ) -> None:
        if forced_shards is not None and forced_shards < 1:
            raise ConfigurationError(
                f"forced_shards must be >= 1, got {forced_shards}"
            )
        self.model = model if model is not None else FlushCostModel()
        self.cores = cores if cores is not None else (os.cpu_count() or 1)
        self.min_shard_pairs = min_shard_pairs
        self.parallel = parallel
        self.forced_shards = forced_shards
        self.max_workers = max_workers
        self.shm_ok = shm_ok

    def _transport(self, mode: str, pairs: int) -> str:
        if mode in ("unsharded", "seq"):
            return "inline"
        if mode == "thread":
            return "inline"  # same address space: nothing to ship
        if self.shm_ok and pairs >= SHM_MIN_PAIRS:
            return "shm"
        return "pickle"

    def _predict(self, mode: str, pairs: int, units: int, shards: int) -> FlushPlan:
        transport = self._transport(mode, pairs)
        predicted = self.model.predict(
            mode,
            pairs,
            units,
            shards=shards,
            cores=self.cores,
            transport=transport,
            min_shard_pairs=self.min_shard_pairs,
        )
        return FlushPlan(
            mode=mode, shards=shards, transport=transport,
            predicted_seconds=predicted,
        )

    def plan(self, pairs: int, units: int, single_unit_direct: bool) -> FlushPlan:
        """The plan for one cut flush.

        ``units`` is the cut's component count; ``single_unit_direct``
        says the executor's single-unit fast path applies (the whole
        instance solves directly), which is what the ``"unsharded"``
        mode means.
        """
        if single_unit_direct:
            return self._predict("unsharded", pairs, 1, 1)
        if self.forced_shards is not None:
            mode = "seq" if self.parallel == "off" else self.parallel
            return self._predict(mode, pairs, units, self.forced_shards)
        width_cap = min(self.cores, units, self.max_workers or self.cores)
        if self.parallel in ("thread", "process"):
            width = max(2, width_cap) if width_cap > 1 else max(2, min(units, 2))
            return self._predict(self.parallel, pairs, units, width)
        candidates = [self._predict("seq", pairs, units, 1)]
        width = 2
        while width <= width_cap:
            candidates.append(self._predict("process", pairs, units, width))
            width *= 2
        if width_cap > 1 and width // 2 != width_cap:
            candidates.append(self._predict("process", pairs, units, width_cap))
        return min(candidates, key=lambda plan: plan.predicted_seconds)
