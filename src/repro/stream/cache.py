"""Flush-fingerprint solver cache: skip re-solving repeated flushes.

Dynamic workloads re-solve many *small, highly similar* instances: a
duty-cycle fleet serves the same neighbourhoods every few minutes, losers
of one micro-flush re-flush unchanged until a worker frees up, and
repeated experiment runs replay identical (instance, noise) pairs.  This
module caches :class:`~repro.core.result.AssignmentResult`s keyed by a
**flush fingerprint** — a content hash of everything the solve reads — so
a recurring flush returns its result without running the engine at all.

What goes into the fingerprint (and why):

* the **pair arrays** (CSR offsets / tasks / workers / distances / task
  values) plus the **public ids** of the flush's tasks and workers — the
  matching, ledger and release board are keyed by public ids, so two
  flushes may only share a result when the ids line up too;
* the **utility model** (``repr``) and a **method key** (solver class,
  reported name, round caps, shard-cut configuration);
* for solvers that consume randomness or read budget state — every
  *private* method, and any solver this module cannot prove pure — the
  **budget columns**, the **noise-seed key** of the flush, and the
  **per-worker remaining shift budgets** from the
  :class:`~repro.stream.batcher.WorkerBudgetTracker`.

The last item is the subtle one: budget *carry* makes naively-keyed
caching wrong.  The micro-batcher truncates each flush's budget vectors
against the workers' remaining shift budgets, and the cap invariant is
re-audited against the tracker when the (possibly cached) ledger is
charged — so two flushes that happen to share pair arrays but differ in
remaining budgets must never alias.  Hashing the remainders makes the
cache transparent *by construction*: the fingerprint captures the full
budget state a private flush can observe, not just the arrays it
happened to produce.

Non-private conflict elimination (UCE/DCE), GRD, GT and OPT are pure
functions of the distance geometry: they never read the budget columns
and never draw noise.  Their fingerprints omit budgets and seeds, which
is what makes *cross-flush* hits real — the freshly sampled budget
vectors and the per-flush noise keys differ on every flush, but a
re-flushed loser set against an unchanged fleet hashes identically.
Private methods key on their noise schedule, so they hit only when the
whole (seed, flush, method) recurs — repeated runs sharing one cache.

Results are bit-identical either way (the cache property suite pins
cache-on == cache-off for every registry method): a hit returns exactly
what the skipped solve would have produced.
"""

from __future__ import annotations

import hashlib
import json
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.core.engine import ConflictEliminationSolver
from repro.core.nonprivate import GreedySolver
from repro.core.optimal import OptimalSolver
from repro.core.pgt import _BestResponseSolver
from repro.core.result import AssignmentResult
from repro.errors import ConfigurationError
from repro.simulation.instance import ProblemInstance

if TYPE_CHECKING:  # runtime import is deferred to break the package cycle
    from repro.core.registry import Solver

__all__ = [
    "FlushCacheProfile",
    "FlushSolverCache",
    "cache_profile",
    "flush_fingerprint",
    "flush_inputs_fingerprint",
]


@dataclass(frozen=True, slots=True)
class FlushCacheProfile:
    """What a solver's fingerprint must capture to be replay-safe.

    ``method_key`` names the configured solver (class, reported name,
    caps, shard-cut config).  ``content_sensitive`` says whether the
    solver can observe budget columns, noise draws, or tracker state —
    true for every private method and for any solver class this module
    does not recognise as pure (unknown solvers are assumed to read
    everything; conservatism costs hits, never correctness).
    """

    method_key: str
    content_sensitive: bool


def cache_profile(solver: "Solver", shard_key: str = "") -> FlushCacheProfile:
    """Build the cache profile of one configured solver.

    ``shard_key`` distinguishes shard-cut configurations (the cut shapes
    private noise streams and the merged audit-trail order).
    """
    parts = [type(solver).__name__, str(solver.name)]
    max_rounds = getattr(solver, "max_rounds", None)
    if max_rounds is not None:
        parts.append(f"max_rounds={max_rounds}")
    max_passes = getattr(solver, "max_passes", None)
    if max_passes is not None:
        parts.append(f"max_passes={max_passes}")
    if shard_key:
        parts.append(shard_key)
    pure = isinstance(
        solver, (GreedySolver, OptimalSolver)
    ) or (
        isinstance(solver, (ConflictEliminationSolver, _BestResponseSolver))
        and not solver.is_private
    )
    return FlushCacheProfile(
        method_key="|".join(parts),
        content_sensitive=not pure,
    )


def flush_fingerprint(
    instance: ProblemInstance,
    profile: FlushCacheProfile,
    noise_key: tuple[int, ...] | None = None,
    remaining_budgets: tuple[float, ...] | None = None,
) -> str:
    """The content hash one flush solve is a pure function of.

    ``noise_key`` and ``remaining_budgets`` are hashed only for
    content-sensitive profiles (see module docstring); passing them for a
    pure profile is harmless and ignored.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(profile.method_key.encode())
    digest.update(_model_key(instance.model))
    instance.pairs.update_digest(digest, include_budgets=profile.content_sensitive)
    tasks = instance.tasks
    workers = instance.workers
    digest.update(
        np.fromiter((t.id for t in tasks), dtype=np.int64, count=len(tasks)).tobytes()
    )
    digest.update(
        np.fromiter(
            (w.id for w in workers), dtype=np.int64, count=len(workers)
        ).tobytes()
    )
    if profile.content_sensitive:
        digest.update(repr(noise_key).encode())
        digest.update(
            np.asarray(
                remaining_budgets if remaining_budgets is not None else (),
                dtype=np.float64,
            ).tobytes()
        )
    return digest.hexdigest()


#: Small identity-keyed memo for stable ``repr`` keys (model, budget
#: sampler): every flush of a stream shares the same frozen objects, so
#: object identity captures them.  Entries hold strong references and are
#: verified with ``is`` — a recycled ``id()`` can never alias a different
#: object — and the memo stays tiny (a stream contributes two objects).
_REPR_KEY_MEMO: dict[int, tuple[object, bytes]] = {}


def _repr_key(obj) -> bytes:
    memo = _REPR_KEY_MEMO.get(id(obj))
    if memo is not None and memo[0] is obj:
        return memo[1]
    encoded = repr(obj).encode()
    if len(_REPR_KEY_MEMO) >= 16:
        _REPR_KEY_MEMO.clear()
    _REPR_KEY_MEMO[id(obj)] = (obj, encoded)
    return encoded


def _model_key(model) -> bytes:
    return _repr_key(model)


def flush_inputs_fingerprint(
    tasks,
    workers,
    model,
    budget_sampler,
    profile: FlushCacheProfile,
    build_key: tuple[int, ...] | None = None,
    noise_key: tuple[int, ...] | None = None,
    remaining_budgets: tuple[float, ...] | None = None,
) -> str:
    """The content hash of one flush's *inputs*, taken before any build.

    :func:`flush_fingerprint` hashes the built pair arrays; this variant
    hashes what the arrays are a deterministic function of — the task
    records (id, location, value), worker records (id, location,
    radius), model, and budget sampler — so a cache hit can skip
    **instance construction** as well as the solve (the zero-rebuild
    flush path).  For content-sensitive profiles the ``build_key`` (the
    budget-sampling seed tuple), ``noise_key`` and per-worker remaining
    budgets join the digest: they pin the sampled budget columns, the
    truncation state and the noise stream, so a hit implies a
    bit-identical instance *and* solve.  Pure profiles omit all three —
    their solves never observe budgets or noise, which is what makes
    recurring flushes hit even though every flush samples fresh budgets.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(profile.method_key.encode())
    digest.update(_repr_key(model))
    digest.update(_repr_key(budget_sampler))
    digest.update(b"%d:%d" % (len(tasks), len(workers)))
    digest.update(
        np.fromiter((t.id for t in tasks), dtype=np.int64, count=len(tasks)).tobytes()
    )
    digest.update(
        np.fromiter(
            (v for t in tasks for v in (t.location[0], t.location[1], t.value)),
            dtype=np.float64,
            count=3 * len(tasks),
        ).tobytes()
    )
    digest.update(
        np.fromiter(
            (w.id for w in workers), dtype=np.int64, count=len(workers)
        ).tobytes()
    )
    digest.update(
        np.fromiter(
            (v for w in workers for v in (w.location[0], w.location[1], w.radius)),
            dtype=np.float64,
            count=3 * len(workers),
        ).tobytes()
    )
    if profile.content_sensitive:
        digest.update(repr(build_key).encode())
        digest.update(repr(noise_key).encode())
        digest.update(
            np.asarray(
                remaining_budgets if remaining_budgets is not None else (),
                dtype=np.float64,
            ).tobytes()
        )
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class _CachedFlush:
    """One stored flush outcome (result + the cut width it recorded)."""

    result: AssignmentResult
    shards: int
    nbytes: int


def _entry_nbytes(result: AssignmentResult) -> int:
    """Estimated resident size of one cached flush.

    The pair arrays dominate; populations, ledger events and release
    board are charged at flat per-item rates (Python-object overheads
    are approximate by nature — the bound is a budget, not an audit).
    """
    instance = result.instance
    pairs = instance.pairs
    total = 512
    for array in (
        pairs.offsets,
        pairs.task,
        pairs.worker,
        pairs.distance,
        pairs.budget_matrix,
        pairs.budget_len,
        pairs.task_value,
        pairs.budget_prefix,
    ):
        total += array.nbytes
    total += 128 * (len(instance.tasks) + len(instance.workers))
    total += 96 * len(result.ledger)
    total += 64 * len(result.matching)
    for releases in result.release_board.values():
        total += 64 + 48 * len(releases)
    return total


class FlushSolverCache:
    """Bounded LRU of solved flushes, keyed by fingerprint.

    One cache may back many flushes of one stream (the
    :class:`~repro.stream.simulator.DispatchSimulator` default) or be
    shared across sessions/runs — including *concurrently*: every
    operation holds an internal lock, entries are immutable, and a hit
    hands out a shallow copy, so many sessions (threads, asyncio tenant
    loops) may interleave lookups and stores safely.

    Two eviction bounds apply together, LRU order both times:
    ``max_entries`` caps the entry count, ``max_bytes`` (optional) caps
    the estimated resident size — the knob that matters when one shared
    cache backs thousands of tenant sessions.  ``evictions`` counts
    entries dropped by either bound.

    Snapshots (:meth:`save` / :meth:`load`) persist the cache as JSON
    across restarts: entries are encoded through
    :mod:`repro.stream.persist` (bit-identical round-trip), written
    oldest-first so reloading preserves LRU order.  Entries that cannot
    be encoded (exotic value functions) are skipped, never fatal.
    """

    def __init__(self, max_entries: int = 256, max_bytes: int | None = None):
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ConfigurationError(
                f"max_bytes must be >= 1 or None, got {max_bytes}"
            )
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, _CachedFlush]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._total_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def total_bytes(self) -> int:
        """Estimated resident size of all entries."""
        return self._total_bytes

    def lookup(
        self, fingerprint: str, instance: ProblemInstance | None = None
    ) -> tuple[AssignmentResult, int] | None:
        """The stored ``(result, shards)`` for a fingerprint.

        A hit returns the cached result with the wall-clock field zeroed
        (elapsed time measures the host, not the protocol, and a cache
        hit genuinely did no solver work).  The zero-rebuild flush path
        looks up *before* any instance exists and consumes the cached
        result as-is — fingerprint-equal flushes agree on everything a
        result exposes (ids, distances, values, ledger).  Callers that
        did build a fresh instance may pass it to have the result
        re-attached.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(fingerprint)
        result = entry.result
        if instance is not None:
            result = replace(result, instance=instance, elapsed_seconds=0.0)
        else:
            result = replace(result, elapsed_seconds=0.0)
        return result, entry.shards

    def store(self, fingerprint: str, result: AssignmentResult, shards: int) -> None:
        """Remember one solved flush (evicting LRU entries past a bound)."""
        entry = _CachedFlush(
            result=result, shards=shards, nbytes=_entry_nbytes(result)
        )
        with self._lock:
            old = self._entries.pop(fingerprint, None)
            if old is not None:
                self._total_bytes -= old.nbytes
            self._entries[fingerprint] = entry
            self._total_bytes += entry.nbytes
            self._evict_locked()

    def _evict_locked(self) -> None:
        """Drop LRU entries until both bounds hold (lock already held).

        The byte bound never evicts the newest entry: a single flush
        larger than ``max_bytes`` stays resident until the next store
        displaces it (refusing it outright would silently disable the
        cache for big-flush workloads).
        """
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None
            and self._total_bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            _, evicted = self._entries.popitem(last=False)
            self._total_bytes -= evicted.nbytes
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()
            self._total_bytes = 0

    # -- snapshot persistence ------------------------------------------

    def to_snapshot(self) -> dict[str, Any]:
        """The cache as a JSON-ready dict (entries oldest-first).

        Entries without a JSON codec (see
        :class:`~repro.stream.persist.SnapshotError`) are skipped and
        counted in the snapshot's ``skipped`` field.
        """
        from repro.stream.persist import SNAPSHOT_VERSION, SnapshotError, encode_result

        with self._lock:
            items = list(self._entries.items())
        entries = []
        skipped = 0
        for fingerprint, entry in items:
            try:
                payload = encode_result(entry.result)
            except SnapshotError:
                skipped += 1
                continue
            entries.append(
                {"fingerprint": fingerprint, "shards": entry.shards, "result": payload}
            )
        return {
            "v": SNAPSHOT_VERSION,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "skipped": skipped,
            "entries": entries,
        }

    @classmethod
    def from_snapshot(
        cls,
        snapshot: Mapping[str, Any],
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> "FlushSolverCache":
        """Rebuild a cache from :meth:`to_snapshot` output.

        ``max_entries`` / ``max_bytes`` override the snapshot's bounds
        (the restarted service may be sized differently); entries are
        restored oldest-first, so LRU order — and which entries a
        tighter bound evicts — matches a cache that was never down.
        """
        from repro.stream.persist import SNAPSHOT_VERSION, decode_result

        version = snapshot.get("v")
        if version != SNAPSHOT_VERSION:
            raise ConfigurationError(
                f"unsupported cache snapshot version {version!r} "
                f"(this build speaks v{SNAPSHOT_VERSION})"
            )
        cache = cls(
            max_entries=max_entries
            if max_entries is not None
            else snapshot.get("max_entries", 256),
            max_bytes=max_bytes
            if max_bytes is not None
            else snapshot.get("max_bytes"),
        )
        for item in snapshot.get("entries", ()):
            cache.store(
                item["fingerprint"], decode_result(item["result"]), item["shards"]
            )
        return cache

    def save(self, path: "str | Path") -> int:
        """Write the snapshot JSON to ``path``; returns entries written."""
        snapshot = self.to_snapshot()
        Path(path).write_text(json.dumps(snapshot))
        return len(snapshot["entries"])

    @classmethod
    def load(
        cls,
        path: "str | Path",
        max_entries: int | None = None,
        max_bytes: int | None = None,
        strict: bool = False,
    ) -> "FlushSolverCache":
        """Read a snapshot written by :meth:`save`.

        The snapshot is a *cache*: a truncated, bit-flipped or otherwise
        corrupt file (a crash mid-``save``, a stale format) must never
        keep the service from constructing.  Any decode failure —
        invalid JSON, a bad version, malformed entries — is demoted to a
        :class:`UserWarning` and an **empty** cache with the requested
        bounds, unless ``strict=True`` (tests, debugging) restores the
        historical raise.
        """
        from repro.faults import active_fault_plan

        try:
            plan = active_fault_plan()
            if plan is not None:
                plan.fire("snapshot_corrupt", site="cache.load")
            return cls.from_snapshot(
                json.loads(Path(path).read_text()),
                max_entries=max_entries,
                max_bytes=max_bytes,
            )
        except FileNotFoundError:
            raise
        except Exception as exc:
            if strict:
                raise
            warnings.warn(
                f"cache snapshot {path} is unusable ({type(exc).__name__}: "
                f"{exc}); starting cold",
                stacklevel=2,
            )
            bounds: dict[str, Any] = {}
            if max_entries is not None:
                bounds["max_entries"] = max_entries
            if max_bytes is not None:
                bounds["max_bytes"] = max_bytes
            return cls(**bounds)
