"""Online dispatch: continuous-time arrivals, micro-batching, streaming.

The scenario-diversity layer over the offline Section VII-B protocol:
tasks and workers arrive over continuous time
(:mod:`repro.stream.arrivals`), an event-driven simulator enforces task
deadlines and worker duty cycles (:mod:`repro.stream.simulator`), a
micro-batcher converts the pending buffer into budget-capped
:class:`~repro.simulation.instance.ProblemInstance` flushes
(:mod:`repro.stream.batcher`), and :class:`StreamRunner` replays the same
timeline through every method (:mod:`repro.stream.runner`), collecting
latency / expiry / throughput / privacy-over-time measures
(:mod:`repro.stream.metrics`).

Scaling layer: flushes can be *sharded* — spatially cut into
conflict-free components and solved independently, sequentially or in
parallel (:mod:`repro.stream.shards`, with a zero-copy shared-memory
transport and persistent warm pools) — each flush's execution strategy
is *planned* by a calibrated cost model
(:mod:`repro.stream.costmodel`, the ``shards="auto"`` default), the
flush size can *adapt* to observed flush service times
(:class:`~repro.stream.batcher.AdaptiveBatchController`), and recurring
flushes can skip instance construction and solve entirely through the
flush-fingerprint solver cache (:mod:`repro.stream.cache`), with engine
buffers reused across flushes via the
:class:`~repro.core.workspace.EngineWorkspace` arena.
"""

from repro.stream.arrivals import (
    ArrivalProcess,
    BurstyProcess,
    PoissonProcess,
    RushHourProcess,
    StreamWorkload,
    TraceProcess,
)
from repro.stream.batcher import (
    AdaptiveBatchController,
    MicroBatcher,
    WorkerBudgetTracker,
)
from repro.stream.events import (
    ActiveWorker,
    Assignment,
    OpenTask,
    StreamEvent,
    TaskArrival,
    WorkerArrival,
    WorkerDeparture,
    merge_events,
)
from repro.stream.cache import FlushSolverCache, cache_profile, flush_fingerprint
from repro.stream.costmodel import (
    FlushCostModel,
    FlushPlan,
    FlushPlanner,
    geomean_ratio,
)
from repro.stream.metrics import FlushRecord, StreamStats
from repro.stream.runner import StreamReport, StreamRunner
from repro.stream.shards import (
    ShardComponent,
    ShardCut,
    ShardedFlushExecutor,
    ShardSeedSchedule,
    build_shard_instance,
    cut_flush,
    merge_shard_results,
    shutdown_warm_pools,
)
from repro.stream.simulator import DispatchSimulator, StreamConfig

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "RushHourProcess",
    "BurstyProcess",
    "TraceProcess",
    "StreamWorkload",
    "TaskArrival",
    "WorkerArrival",
    "WorkerDeparture",
    "StreamEvent",
    "Assignment",
    "OpenTask",
    "ActiveWorker",
    "merge_events",
    "MicroBatcher",
    "AdaptiveBatchController",
    "WorkerBudgetTracker",
    "ShardComponent",
    "ShardCut",
    "ShardSeedSchedule",
    "ShardedFlushExecutor",
    "cut_flush",
    "build_shard_instance",
    "merge_shard_results",
    "shutdown_warm_pools",
    "FlushCostModel",
    "FlushPlan",
    "FlushPlanner",
    "geomean_ratio",
    "FlushSolverCache",
    "cache_profile",
    "flush_fingerprint",
    "StreamConfig",
    "DispatchSimulator",
    "StreamRunner",
    "StreamReport",
    "StreamStats",
    "FlushRecord",
]
