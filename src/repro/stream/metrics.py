"""Streaming measures: latency, expiry, throughput, privacy over time.

The offline measures (:mod:`repro.simulation.metrics`) average utility and
distance over a fixed batch sequence.  Online dispatch adds the dimensions
the paper's Section VII protocol holds constant:

* **assignment latency** — clock time from a task's release to the flush
  that assigned it (p50 / p95 / mean);
* **expiry rate** — the fraction of released tasks whose deadline passed
  unassigned;
* **throughput** — assigned tasks per wall-clock second of solver work;
* **privacy over time** — the cumulative published budget after every
  micro-batch, per worker and in total (the streaming analogue of the
  Theorem V.2 audit trail).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FlushRecord", "StreamStats"]


@dataclass(frozen=True, slots=True)
class FlushRecord:
    """One micro-batch: what was flushed, solved and spent.

    ``shards`` is how many conflict-free components the flush was cut
    into (1 on the unsharded path); ``batch_limit`` is the
    ``max_batch_size`` in force when the flush fired (it moves under
    adaptive micro-batching; 0 means "not recorded").  ``cache_hit``
    says whether the flush-fingerprint solver cache served the result
    (``None`` when the cache is disabled).
    """

    index: int
    time: float
    pending_tasks: int
    idle_workers: int
    matched: int
    solver_seconds: float
    cumulative_privacy_spend: float
    shards: int = 1
    batch_limit: int = 0
    cache_hit: bool | None = None


@dataclass
class StreamStats:
    """Aggregate of one method over one event stream."""

    method: str
    arrived_tasks: int = 0
    arrived_workers: int = 0
    assigned: int = 0
    expired: int = 0
    leftover: int = 0
    total_utility: float = 0.0
    total_distance: float = 0.0
    solver_seconds: float = 0.0
    sim_duration: float = 0.0
    latencies: list[float] = field(default_factory=list)
    flushes: list[FlushRecord] = field(default_factory=list)
    #: ``(time, cumulative total spend)`` after every flush — monotone.
    privacy_timeline: list[tuple[float, float]] = field(default_factory=list)
    per_worker_spend: dict[int, float] = field(default_factory=dict)
    #: Flush-fingerprint solver-cache counters (both 0 when disabled).
    cache_hits: int = 0
    cache_misses: int = 0

    # -- derived measures --------------------------------------------------

    @property
    def resolved(self) -> int:
        """Tasks with a final outcome (assigned or expired)."""
        return self.assigned + self.expired

    @property
    def assignment_rate(self) -> float:
        """Assigned fraction of all released tasks."""
        return self.assigned / self.arrived_tasks if self.arrived_tasks else 0.0

    @property
    def expiry_rate(self) -> float:
        """Expired fraction of all released tasks."""
        return self.expired / self.arrived_tasks if self.arrived_tasks else 0.0

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of assignment latency (0 if unmatched)."""
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, q))

    @property
    def latency_p50(self) -> float:
        return self.latency_percentile(50)

    @property
    def latency_p95(self) -> float:
        return self.latency_percentile(95)

    @property
    def throughput_tasks_per_sec(self) -> float:
        """Assigned tasks per wall-clock second of solver compute."""
        if self.solver_seconds <= 0.0:
            return 0.0
        return self.assigned / self.solver_seconds

    @property
    def total_privacy_spend(self) -> float:
        """Cumulative published budget at the end of the stream."""
        return self.privacy_timeline[-1][1] if self.privacy_timeline else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Solver-cache hits over solved flushes (0.0 with the cache off)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def average_utility(self) -> float:
        return self.total_utility / self.assigned if self.assigned else 0.0

    @property
    def average_distance(self) -> float:
        return self.total_distance / self.assigned if self.assigned else 0.0

    # -- recording ---------------------------------------------------------

    def record_flush(self, record: FlushRecord) -> None:
        """Append one flush, enforcing the monotone-spend invariant."""
        if self.privacy_timeline:
            last = self.privacy_timeline[-1][1]
            if record.cumulative_privacy_spend < last - 1e-9:
                raise ConfigurationError(
                    f"privacy spend went backwards: {last} -> "
                    f"{record.cumulative_privacy_spend} at flush {record.index}"
                )
        self.flushes.append(record)
        self.privacy_timeline.append(
            (record.time, record.cumulative_privacy_spend)
        )
        self.solver_seconds += record.solver_seconds
        if record.cache_hit is not None:
            if record.cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
