"""Streaming measures: latency, expiry, throughput, privacy over time.

The offline measures (:mod:`repro.simulation.metrics`) average utility and
distance over a fixed batch sequence.  Online dispatch adds the dimensions
the paper's Section VII protocol holds constant:

* **assignment latency** — clock time from a task's release to the flush
  that assigned it (p50 / p95 / mean);
* **expiry rate** — the fraction of released tasks whose deadline passed
  unassigned;
* **throughput** — assigned tasks per wall-clock second of solver work;
* **privacy over time** — the cumulative published budget after every
  micro-batch, per worker and in total (the streaming analogue of the
  Theorem V.2 audit trail).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.api.options import validate_timeline_limit
from repro.errors import ConfigurationError
from repro.obs.indicators import Ewma, RollingQuantile, WarmupZScore
from repro.stream.events import Assignment

__all__ = ["FlushRecord", "OnlineIndicators", "StreamStats"]


@dataclass(frozen=True, slots=True)
class FlushRecord:
    """One micro-batch: what was flushed, solved and spent.

    ``shards`` is how many conflict-free components the flush was cut
    into (1 on the unsharded path); ``batch_limit`` is the
    ``max_batch_size`` in force when the flush fired (it moves under
    adaptive micro-batching; 0 means "not recorded").  ``cache_hit``
    says whether the flush-fingerprint solver cache served the result
    (``None`` when the cache is disabled).  ``flush_seconds`` is the
    whole flush handler's wall clock (cache + build + solve + commit;
    ``solver_seconds`` remains solve-only, the adaptive controller's
    signal); ``phase_seconds`` is the tracer-derived per-phase breakdown
    (``None`` when tracing is off).

    ``pairs`` is the flush instance's feasible-pair count;
    ``planned_mode`` is the :class:`~repro.stream.costmodel.FlushPlan`
    label the executor chose (``"uns"`` / ``"seq"`` / ``"proc:4+shm"``
    ...; ``"cache"`` for cache-served flushes, which skip planning) and
    ``predicted_seconds`` the cost model's estimate for that plan — the
    pair every calibration-error report compares against
    ``solver_seconds``.

    ``window_spend`` is the fleet's total *in-window* spend right after
    the flush under a sliding-window accountant
    (:mod:`repro.privacy.horizon`); ``None`` on global-accountant
    streams.  Unlike ``cumulative_privacy_spend`` it is not monotone —
    it falls as old releases age out, which is the point.

    ``degraded`` records the executor's ladder walk when the flush hit a
    masked failure (``"proc:4+shm->proc:4->seq"``); ``None`` on a clean
    flush.  Degradation changes latency, never results.
    """

    index: int
    time: float
    pending_tasks: int
    idle_workers: int
    matched: int
    solver_seconds: float
    cumulative_privacy_spend: float
    shards: int = 1
    batch_limit: int = 0
    cache_hit: bool | None = None
    flush_seconds: float = 0.0
    phase_seconds: dict[str, float] | None = None
    pairs: int = 0
    planned_mode: str = ""
    predicted_seconds: float = 0.0
    window_spend: float | None = None
    degraded: str | None = None

    @property
    def top_phase(self) -> str:
        """The costliest traced phase, e.g. ``"solve 71%"`` ("-" untraced)."""
        if not self.phase_seconds:
            return "-"
        phase = max(self.phase_seconds, key=lambda p: (self.phase_seconds[p], p))
        total = sum(self.phase_seconds.values())
        share = self.phase_seconds[phase] / total if total > 0 else 0.0
        return f"{phase} {share:.0%}"


class OnlineIndicators:
    """The streaming run's live dashboard, updated as events happen.

    Composes the :mod:`repro.obs.indicators` primitives into the
    indicator set of the streaming protocol — each updated *during* the
    run by :meth:`StreamStats.update`, never recomputed post hoc:

    * ``latency`` — rolling-window p50/p95 assignment latency;
    * ``throughput`` — EWMA of per-flush assigned tasks per solver
      second (cache-served flushes are skipped: their near-zero solve
      time is a cache property, not solver throughput);
    * ``expiry`` — z-score of the running expiry rate against its frozen
      warmup baseline (a spike says the fleet stopped keeping up);
    * ``drawdown`` — EWMA of per-flush privacy spend per idle worker
      (the budget burn rate the accountant will see);
    * ``cache`` — EWMA of the flush-cache hit indicator;
    * ``window`` — EWMA of the fleet's in-window privacy spend (stays at
      0.0 on global-accountant streams, which never report one).
    """

    __slots__ = (
        "latency",
        "throughput",
        "expiry",
        "drawdown",
        "cache",
        "window",
        "_last_spend",
    )

    #: Rolling latency window (events) — large enough for a stable p95,
    #: small enough to track drift within a scenario phase.
    LATENCY_WINDOW = 512
    #: Flushes whose expiry rates define the frozen z-score baseline.
    EXPIRY_WARMUP = 30

    def __init__(self) -> None:
        self.latency = RollingQuantile(window=self.LATENCY_WINDOW, warmup=1)
        self.throughput = Ewma(alpha=0.2, warmup=5)
        self.expiry = WarmupZScore(warmup=self.EXPIRY_WARMUP)
        self.drawdown = Ewma(alpha=0.2, warmup=5)
        self.cache = Ewma(alpha=0.2, warmup=1)
        self.window = Ewma(alpha=0.2, warmup=1)
        self._last_spend = 0.0

    # -- update paths (called by StreamStats during the run) ---------------

    def observe_latency(self, latency: float) -> None:
        self.latency.update(latency)

    def observe_flush(self, record: FlushRecord, expiry_rate: float) -> None:
        if record.solver_seconds > 0.0 and not record.cache_hit:
            self.throughput.update(record.matched / record.solver_seconds)
        self.expiry.update(expiry_rate)
        spent = record.cumulative_privacy_spend - self._last_spend
        self._last_spend = record.cumulative_privacy_spend
        if record.idle_workers > 0:
            self.drawdown.update(spent / record.idle_workers)
        if record.cache_hit is not None:
            self.cache.update(1.0 if record.cache_hit else 0.0)
        if record.window_spend is not None:
            self.window.update(record.window_spend)

    # -- readings (what the exporters and the report table publish) --------

    @property
    def latency_p50(self) -> float:
        """Rolling-window median latency (nan before any assignment)."""
        return self.latency.p50

    @property
    def latency_p95(self) -> float:
        """Rolling-window p95 latency (nan before any assignment)."""
        return self.latency.p95

    @property
    def throughput_ewma(self) -> float:
        """EWMA assigned tasks per solver second."""
        return self.throughput.value

    @property
    def expiry_zscore(self) -> float:
        """Expiry-rate z-score vs the warmup baseline (0.0 during warmup)."""
        return self.expiry.value

    @property
    def budget_drawdown(self) -> float:
        """EWMA per-flush privacy spend per idle worker."""
        return self.drawdown.value

    @property
    def cache_hit_ewma(self) -> float:
        """EWMA flush-cache hit rate (0.0 with the cache off)."""
        return self.cache.value

    @property
    def window_spend_ewma(self) -> float:
        """EWMA fleet in-window privacy spend (0.0 without a window)."""
        return self.window.value


@dataclass
class StreamStats:
    """Aggregate of one method over one event stream."""

    method: str
    arrived_tasks: int = 0
    arrived_workers: int = 0
    #: Mid-stream worker removals (the churn workload family): departed
    #: idle workers leave the fleet; busy ones keep their in-flight task.
    departed_workers: int = 0
    assigned: int = 0
    expired: int = 0
    leftover: int = 0
    total_utility: float = 0.0
    total_distance: float = 0.0
    solver_seconds: float = 0.0
    sim_duration: float = 0.0
    latencies: list[float] = field(default_factory=list)
    flushes: list[FlushRecord] = field(default_factory=list)
    #: ``(time, cumulative total spend)`` after every flush — monotone.
    privacy_timeline: list[tuple[float, float]] = field(default_factory=list)
    per_worker_spend: dict[int, float] = field(default_factory=dict)
    #: Flush-fingerprint solver-cache counters (both 0 when disabled).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Live streaming indicators, updated event-by-event during the run.
    online: OnlineIndicators = field(default_factory=OnlineIndicators)
    #: The run's recorded spans (the simulator aliases its tracer's list
    #: here when tracing is on; empty otherwise).
    spans: list = field(default_factory=list)
    #: Cap on the timelines above (``None`` = unbounded).  Once a
    #: timeline grows past it, every other *interior* point is dropped —
    #: endpoints survive, so ``total_privacy_spend`` and the monotone
    #: check keep reading the exact latest value, and a 24h replay holds
    #: O(limit) points instead of one per flush.
    timeline_limit: int | None = None
    #: ``(time, fleet in-window spend)`` after every windowed flush —
    #: *not* monotone (spends age out); empty on global streams.
    window_timeline: list[tuple[float, float]] = field(default_factory=list)
    #: Live invariant: no worker's in-window spend ever exceeded their
    #: per-window cap (trivially True on global streams).
    window_invariant_ok: bool = True

    def __post_init__(self) -> None:
        # One validation path: shared with SolveOptions (repro.api.options).
        validate_timeline_limit(self.timeline_limit)

    # -- derived measures --------------------------------------------------

    @property
    def resolved(self) -> int:
        """Tasks with a final outcome (assigned or expired)."""
        return self.assigned + self.expired

    @property
    def assignment_rate(self) -> float:
        """Assigned fraction of all released tasks."""
        return self.assigned / self.arrived_tasks if self.arrived_tasks else 0.0

    @property
    def expiry_rate(self) -> float:
        """Expired fraction of all released tasks."""
        return self.expired / self.arrived_tasks if self.arrived_tasks else 0.0

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of latency over *matched* tasks only.

        Expired tasks have no assignment latency, so they are excluded —
        this is a conditional statistic ("how fast were the tasks we did
        serve"), and under high expiry it says nothing about the tasks
        that never got served.  For an SLO-style reading that charges
        expiries, use :meth:`expiry_adjusted_percentile`.  Returns 0.0
        when nothing matched.
        """
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, q))

    def expiry_adjusted_percentile(self, q: float) -> float:
        """The ``q``-th latency percentile charging expiries as ``inf``.

        The matched-only percentile silently deflates under high expiry:
        a stream that expires 60% of its tasks can still report a tiny
        "p95" over the lucky 40%.  This variant ranks every *resolved*
        task — expired ones with infinite latency — so once ``q`` reaches
        into the expired mass the answer is ``inf`` (the task a ``q``-th
        caller would observe never completed).  Equivalent to
        ``np.percentile(latencies + [inf] * expired, q)`` with linear
        interpolation, computed directly to avoid nan from inf-inf
        interpolation.  Returns 0.0 when nothing resolved.
        """
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        total = len(self.latencies) + self.expired
        if total == 0:
            return 0.0
        matched = sorted(self.latencies)
        position = q / 100.0 * (total - 1)
        lower = math.floor(position)
        fraction = position - lower
        if lower >= len(matched):
            return math.inf
        if fraction == 0.0:
            return matched[lower]
        if lower + 1 >= len(matched):
            return math.inf
        return matched[lower] * (1.0 - fraction) + matched[lower + 1] * fraction

    @property
    def latency_p50(self) -> float:
        return self.latency_percentile(50)

    @property
    def latency_p95(self) -> float:
        return self.latency_percentile(95)

    @property
    def phase_totals(self) -> dict[str, float]:
        """Per-phase seconds summed over every traced flush (empty untraced)."""
        totals: dict[str, float] = {}
        for record in self.flushes:
            if record.phase_seconds:
                for phase, seconds in record.phase_seconds.items():
                    totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    @property
    def top_phase(self) -> str:
        """The costliest phase across the whole run (``"-"`` untraced)."""
        totals = self.phase_totals
        if not totals:
            return "-"
        phase = max(totals, key=lambda p: (totals[p], p))
        grand = sum(totals.values())
        share = totals[phase] / grand if grand > 0 else 0.0
        return f"{phase} {share:.0%}"

    @property
    def plan_summary(self) -> str:
        """Planner decisions over the run, e.g. ``"uns:41 seq:3"``.

        Counts flushes by their :attr:`FlushRecord.planned_mode` label in
        first-seen order; ``"-"`` when no flush recorded a plan (streams
        from before the planner, or hand-built records).
        """
        counts: dict[str, int] = {}
        for record in self.flushes:
            if record.planned_mode:
                counts[record.planned_mode] = counts.get(record.planned_mode, 0) + 1
        if not counts:
            return "-"
        return " ".join(f"{mode}:{count}" for mode, count in counts.items())

    @property
    def degraded_flushes(self) -> int:
        """Flushes that completed via the degradation ladder."""
        return sum(1 for record in self.flushes if record.degraded)

    @property
    def throughput_tasks_per_sec(self) -> float:
        """Assigned tasks per wall-clock second of solver compute."""
        if self.solver_seconds <= 0.0:
            return 0.0
        return self.assigned / self.solver_seconds

    @property
    def total_privacy_spend(self) -> float:
        """Cumulative published budget at the end of the stream."""
        return self.privacy_timeline[-1][1] if self.privacy_timeline else 0.0

    @property
    def current_window_spend(self) -> float:
        """Fleet in-window spend after the latest windowed flush (0.0 on
        global-accountant streams, which record no window series)."""
        return self.window_timeline[-1][1] if self.window_timeline else 0.0

    @property
    def window_peak_spend(self) -> float:
        """The highest fleet in-window spend any flush observed."""
        return max((s for _, s in self.window_timeline), default=0.0)

    @property
    def cache_hit_rate(self) -> float:
        """Solver-cache hits over solved flushes (0.0 with the cache off)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def average_utility(self) -> float:
        return self.total_utility / self.assigned if self.assigned else 0.0

    @property
    def average_distance(self) -> float:
        return self.total_distance / self.assigned if self.assigned else 0.0

    # -- recording ---------------------------------------------------------

    def update(self, event: "FlushRecord | Assignment") -> None:
        """Fold one stream event in, online indicators included.

        The single entry point of the during-the-run protocol: a
        :class:`FlushRecord` goes through :meth:`record_flush`, an
        :class:`~repro.stream.events.Assignment` through
        :meth:`record_latency`.  Indicators only ever see events in
        stream order — the no-lookahead property the obs tests pin.
        """
        if isinstance(event, FlushRecord):
            self.record_flush(event)
        elif isinstance(event, Assignment):
            self.record_latency(event.latency)
        else:
            raise ConfigurationError(f"unknown stream stats event {event!r}")

    def record_latency(self, latency: float) -> None:
        """Record one assignment's latency (post-hoc list + online window)."""
        self.latencies.append(latency)
        self.online.observe_latency(latency)

    def record_flush(self, record: FlushRecord) -> None:
        """Append one flush, enforcing the monotone-spend invariant."""
        if self.privacy_timeline:
            last = self.privacy_timeline[-1][1]
            if record.cumulative_privacy_spend < last - 1e-9:
                raise ConfigurationError(
                    f"privacy spend went backwards: {last} -> "
                    f"{record.cumulative_privacy_spend} at flush {record.index}"
                )
        self.flushes.append(record)
        self.privacy_timeline.append(
            (record.time, record.cumulative_privacy_spend)
        )
        self._cap_timeline(self.privacy_timeline)
        if record.window_spend is not None:
            self.window_timeline.append((record.time, record.window_spend))
            self._cap_timeline(self.window_timeline)
        self.solver_seconds += record.solver_seconds
        if record.cache_hit is not None:
            if record.cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
        self.online.observe_flush(record, expiry_rate=self.expiry_rate)

    def _cap_timeline(self, timeline: list[tuple[float, float]]) -> None:
        """Thin a timeline past :attr:`timeline_limit` by dropping every
        other interior point (both endpoints always survive)."""
        if self.timeline_limit is not None and len(timeline) > self.timeline_limit:
            del timeline[1:-1:2]
