"""Micro-batching: from a pending-task buffer to `ProblemInstance`s.

The streaming layer cannot wait for Section VII-B's 1000-task windows: it
flushes the pending buffer into a solvable :class:`ProblemInstance`
whenever the buffer is full (``max_batch_size``) *or* its oldest task has
waited ``max_wait`` time units — the classic latency/quality trade of
dispatch micro-batching.

Privacy is the part a naive re-batching would get wrong: a worker's LDP
guarantee (Theorem V.2) is about their *cumulative* published budget, so
the spend must carry across flushes.  :class:`WorkerBudgetTracker` keeps
one persistent :class:`~repro.privacy.accountant.PrivacyLedger` per
stream, and :meth:`MicroBatcher.build_instance` truncates each pair's
freshly-sampled budget vector so that the worker's *worst-case* spend in
the flush — every element of every pair published — cannot exceed what
remains of their shift capacity.  The cap therefore holds by construction
for every solver that draws its publishes from ``instance.budgets`` (all
registry methods), not by solver cooperation; a solver that publishes
out of band (e.g. GEOI's per-flush location release) is outside this
model and trips the :meth:`WorkerBudgetTracker.charge` audit instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.options import validate_batching
from repro.core.budgets import BudgetSampler
from repro.core.utility import UtilityModel
from repro.datasets.workload import Worker
from repro.errors import ConfigurationError, FlushBudgetError
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.horizon import BudgetAccountant, GlobalAccountant
from repro.simulation.instance import ProblemInstance
from repro.simulation.pairs import PairArrays
from repro.stream.events import OpenTask

__all__ = ["WorkerBudgetTracker", "MicroBatcher", "AdaptiveBatchController"]


class WorkerBudgetTracker:
    """Per-worker budget accounting, persistent across micro-batches.

    Wraps one append-only :class:`PrivacyLedger` (the task-level audit
    trail) plus one *accountant* (:mod:`repro.privacy.horizon`) that owns
    the capacity arithmetic.  The default :class:`GlobalAccountant` is
    the historical fixed-shift-budget semantics, bit-identically; a
    :class:`~repro.privacy.horizon.WindowAccountant` makes ``remaining``
    / ``exhausted`` windowed — spends age out, and a worker who was
    retired as exhausted becomes eligible again once the window slides
    past their releases (the :meth:`remaining` recomputation at the next
    flush is the regain; there is no separate un-retire step).

    Time enters through :meth:`observe` (the simulator calls it as each
    flush starts), so the per-worker query methods keep their time-free
    signatures at every call site.
    """

    def __init__(self, accountant: BudgetAccountant | None = None) -> None:
        self.ledger = PrivacyLedger()
        self.accountant = GlobalAccountant() if accountant is None else accountant

    @property
    def windowed(self) -> bool:
        """Whether budgets regenerate under a sliding-window policy."""
        return self.accountant.windowed

    def observe(self, now: float) -> None:
        """Advance the accountant's clock to the flush time ``now``."""
        self.accountant.observe(now)

    def register(self, worker_id: int, capacity: float) -> None:
        """Declare a worker's budget capacity (per shift, or per window
        under a windowed accountant)."""
        self.accountant.register(worker_id, capacity)

    def capacity(self, worker_id: int) -> float:
        return self.accountant.capacity(worker_id)

    def spent(self, worker_id: int) -> float:
        """Lifetime published budget — the Theorem V.2 audit total."""
        return self.accountant.lifetime_spend(worker_id)

    def window_spend(self, worker_id: int) -> float:
        """Spend charged against the worker's cap right now (equals
        :meth:`spent` under the global accountant)."""
        return self.accountant.spend_in_window(worker_id)

    def remaining(self, worker_id: int) -> float:
        return self.accountant.remaining(worker_id)

    def exhausted(self, worker_id: int, floor: float = 0.0) -> bool:
        """Whether the worker cannot publish even one more ``floor`` budget."""
        return self.remaining(worker_id) <= floor

    def charge(self, flush_ledger: PrivacyLedger) -> None:
        """Fold one flush's audit trail into the persistent ledger.

        Raises
        ------
        ConfigurationError
            If the recorded spend pushed any worker past capacity.  This
            cannot happen for solvers whose every publish consumes an
            element of ``instance.budgets`` (all registry methods) on
            instances built by :class:`MicroBatcher`; a solver that also
            publishes out of band (e.g. GEOI's per-flush location release)
            is outside the capped model and fails here loudly rather than
            silently overdrawing the shift budget.
        """
        for worker_id, task_id, epsilon in flush_ledger.events():
            self.ledger.record(worker_id, task_id, epsilon)
            self.accountant.record(worker_id, epsilon)
        for worker_id in flush_ledger.workers():
            if self.remaining(worker_id) < -1e-9:
                raise FlushBudgetError(
                    f"worker {worker_id} exceeded shift budget: spent "
                    f"{self.window_spend(worker_id):.4f} of "
                    f"{self.capacity(worker_id):.4f}",
                    worker_id=worker_id,
                    spend=self.window_spend(worker_id),
                    remaining=self.remaining(worker_id),
                )

    def total_spend(self) -> float:
        """Lifetime total across all workers (monotone over the stream)."""
        return self.accountant.total_spend()


def _slice_capped_instance(
    instance: ProblemInstance, keep_len: np.ndarray
) -> ProblemInstance:
    """Re-assemble a budget-capped instance by slicing the pair arrays."""
    pairs = instance.pairs
    offsets = pairs.offsets
    kept = keep_len > 0
    sel = np.flatnonzero(kept)
    kept_cum = np.concatenate(([0], np.cumsum(kept)))
    new_counts = kept_cum[offsets[1:]] - kept_cum[offsets[:-1]]
    new_offsets = np.zeros(len(new_counts) + 1, dtype=np.int64)
    np.cumsum(new_counts, out=new_offsets[1:])

    new_len = keep_len[sel]
    z_max = int(new_len.max()) if new_len.size else 1
    new_matrix = pairs.budget_matrix[sel, :z_max].copy()
    new_matrix[np.arange(z_max) >= new_len[:, None]] = 0.0
    new_pairs = PairArrays(
        offsets=new_offsets,
        task=pairs.task[sel].copy(),
        worker=pairs.worker[sel].copy(),
        distance=pairs.distance[sel].copy(),
        budget_matrix=new_matrix,
        budget_len=new_len.copy(),
        task_value=pairs.task_value,
    )
    kept_tasks = new_pairs.task.tolist()
    reachable = tuple(
        tuple(kept_tasks[int(new_offsets[j]) : int(new_offsets[j + 1])])
        for j in range(instance.num_workers)
    )
    return ProblemInstance.from_arrays(
        tasks=instance.tasks,
        workers=instance.workers,
        model=instance.model,
        reachable=reachable,
        pairs=new_pairs,
    )


@dataclass
class AdaptiveBatchController:
    """Target-latency controller for the micro-batch flush size.

    Watches each flush's *service time* (solver wall seconds) and steers
    ``max_batch_size`` toward the largest flush the solver can clear
    within ``target_seconds``: bigger flushes amortise per-flush overhead
    and give the solver more pairs per sweep, but a flush that takes
    longer than the target starts eating into assignment latency.

    The policy is deterministic and multiplicative (AIMD-flavoured):

    * a flush slower than the target shrinks the size proportionally to
      the overshoot (never below ``min_size``);
    * a *full* flush faster than ``headroom * target`` grows the size by
      ``growth`` (never above ``max_size``) — under-filled flushes carry
      no evidence that a bigger limit would fill, so they never grow it.

    With a ``cost_model`` attached the controller also plans ahead
    instead of only reacting: it keeps a pairs-per-task EWMA from the
    observed flushes and caps growth at the batch size whose *predicted*
    solve time (:meth:`~repro.stream.costmodel.FlushCostModel.
    max_pairs_within`) stays inside the target — so one over-eager
    growth step can no longer blow a flush straight past the latency
    budget before the reactive shrink kicks in.
    """

    target_seconds: float = 0.02
    min_size: int = 8
    max_size: int = 2000
    growth: float = 1.5
    headroom: float = 0.5
    cost_model: "object | None" = None
    _pairs_per_task: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.target_seconds > 0:
            raise ConfigurationError(
                f"target_seconds must be positive, got {self.target_seconds}"
            )
        if not 1 <= self.min_size <= self.max_size:
            raise ConfigurationError(
                f"need 1 <= min_size <= max_size, got "
                f"[{self.min_size}, {self.max_size}]"
            )
        if not self.growth > 1.0:
            raise ConfigurationError(f"growth must exceed 1, got {self.growth}")
        if not 0 < self.headroom <= 1.0:
            raise ConfigurationError(
                f"headroom must be in (0, 1], got {self.headroom}"
            )

    def next_size(
        self, current: int, service_seconds: float, flushed: int, pairs: int = 0
    ) -> int:
        """The flush-size limit to use after one observed flush.

        ``pairs`` (the flush instance's feasible-pair count, 0 when
        unknown) feeds the cost model's look-ahead cap; without a model
        the policy is the pure reactive AIMD.
        """
        if pairs > 0 and flushed > 0:
            ratio = pairs / flushed
            self._pairs_per_task = (
                ratio
                if self._pairs_per_task == 0.0
                else 0.7 * self._pairs_per_task + 0.3 * ratio
            )
        if service_seconds > self.target_seconds:
            shrunk = int(current * self.target_seconds / service_seconds)
            return max(self.min_size, min(shrunk, current - 1))
        if flushed >= current and service_seconds < self.headroom * self.target_seconds:
            grown = min(self.max_size, max(int(current * self.growth), current + 1))
            return max(min(grown, self._planned_cap()), min(current, self.max_size))
        return current

    def _planned_cap(self) -> int:
        """Largest batch the cost model predicts still meets the target.

        Unbounded without a model or before any pairs-per-task evidence.
        """
        if self.cost_model is None or self._pairs_per_task <= 0.0:
            return self.max_size
        max_pairs = self.cost_model.max_pairs_within(self.target_seconds)
        return max(self.min_size, int(max_pairs / self._pairs_per_task))


@dataclass
class MicroBatcher:
    """Pending-task buffer with size- and wait-based flush triggers.

    Parameters
    ----------
    max_batch_size:
        Flush as soon as this many tasks are pending.  With a
        ``controller`` attached this is only the *initial* limit — each
        observed flush may grow or shrink it.
    max_wait:
        Flush as soon as the oldest pending task has waited this long.
    budget_sampler, model:
        Per-flush instance parameters (Table X defaults when omitted).
    controller:
        Optional :class:`AdaptiveBatchController`; feed it through
        :meth:`observe_flush` after every flush.
    """

    max_batch_size: int = 200
    max_wait: float = 0.25
    budget_sampler: BudgetSampler | None = None
    model: UtilityModel | None = None
    controller: AdaptiveBatchController | None = None
    _pending: list[OpenTask] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        # One validation path: shared with SolveOptions (repro.api.options).
        validate_batching(self.max_batch_size, self.max_wait)
        # Resolve the model and sampler once: every flush then shares the
        # same frozen objects, which the flush-fingerprint cache's
        # identity-memoed repr keys exploit.
        if self.model is None:
            self.model = UtilityModel()
        if self.budget_sampler is None:
            self.budget_sampler = BudgetSampler()
        if self.controller is not None:
            self.max_batch_size = max(
                self.controller.min_size,
                min(self.max_batch_size, self.controller.max_size),
            )

    def observe_flush(
        self, service_seconds: float, flushed: int, pairs: int = 0
    ) -> int:
        """Adapt ``max_batch_size`` to one flush's observed service time.

        ``pairs`` forwards the flush's feasible-pair count to the
        controller's cost-model look-ahead (0 = unknown).  No-op without
        a controller.  Returns the limit now in force.
        """
        if self.controller is not None:
            self.max_batch_size = self.controller.next_size(
                self.max_batch_size, service_seconds, flushed, pairs=pairs
            )
        return self.max_batch_size

    # -- buffer ------------------------------------------------------------

    def add(self, open_task: OpenTask) -> None:
        self._pending.append(open_task)

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> tuple[OpenTask, ...]:
        return tuple(self._pending)

    def oldest_waiting(self) -> float | None:
        """Earliest ``buffer_since`` among pending tasks."""
        if not self._pending:
            return None
        return min(t.buffer_since for t in self._pending)

    def flush_deadline(self) -> float | None:
        """The absolute time by which a wait-triggered flush is due."""
        oldest = self.oldest_waiting()
        return None if oldest is None else oldest + self.max_wait

    def should_flush(self, now: float) -> bool:
        if len(self._pending) >= self.max_batch_size:
            return True
        deadline = self.flush_deadline()
        return deadline is not None and now >= deadline - 1e-12

    def expire(self, now: float) -> list[OpenTask]:
        """Drop and return every pending task whose deadline has passed."""
        expired = [t for t in self._pending if t.expired(now)]
        if expired:
            self._pending = [t for t in self._pending if not t.expired(now)]
        return expired

    def take_batch(self) -> list[OpenTask]:
        """Remove and return the oldest ``max_batch_size`` pending tasks."""
        self._pending.sort(key=lambda t: (t.arrival_time, t.task.id))
        batch = self._pending[: self.max_batch_size]
        self._pending = self._pending[self.max_batch_size :]
        return batch

    def restore(self, open_tasks: list[OpenTask], now: float) -> None:
        """Return unassigned tasks to the buffer for the next flush.

        Their wait-trigger clocks restart at ``now`` so losers pace
        re-flushes instead of keeping the buffer permanently overdue.
        """
        for open_task in open_tasks:
            open_task.buffer_since = now
        self._pending.extend(open_tasks)

    # -- instance assembly -------------------------------------------------

    def build_instance(
        self,
        open_tasks: list[OpenTask],
        workers: list[Worker],
        tracker: WorkerBudgetTracker | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> ProblemInstance:
        """One flush's :class:`ProblemInstance`, budget-capped per worker.

        Reachability and distances come from the standard
        :meth:`ProblemInstance.build` path (grid index + exact distances);
        each pair's sampled budget vector is then truncated so the sum of
        *all* retained elements across a worker's pairs is at most the
        worker's remaining shift budget.  Pairs left with no affordable
        element drop out of the worker's reachable set entirely.

        The truncation works on the instance's pair arrays directly: each
        pair's affordable prefix length falls out of its budget cumsum
        (``budget_prefix``) against the worker's running remainder, and
        the capped instance is re-assembled by slicing those arrays — no
        per-pair Python lists or dicts are rebuilt.  The resulting cap
        (worst-case flush spend per worker ≤ remaining shift budget) is
        asserted in one place before the instance is returned.

        ``tracker=None`` skips the capping — the path for non-private
        methods, which never publish and so never deplete a shift budget.
        """
        instance = ProblemInstance.build(
            [t.task for t in open_tasks],
            workers,
            budget_sampler=self.budget_sampler,
            model=self.model,
            seed=seed,
        )
        if tracker is None or instance.num_feasible_pairs == 0:
            return instance
        pairs = instance.pairs
        offsets = pairs.offsets
        prefix = pairs.budget_prefix
        budget_len = pairs.budget_len
        remaining0 = np.array(
            [tracker.remaining(w.id) for w in workers], dtype=np.float64
        )

        # Affordable prefix length per pair: element u fits exactly when
        # the pair-local cumulative spend up to u stays within the
        # worker's running remainder (budgets are positive, so the cumsum
        # is monotone and the comparison yields a prefix).  Fast path
        # first: a worker whose *whole* sampled spend clearly fits the
        # remainder keeps every element — the steady-state case for fresh
        # shifts — which turns the per-pair Python scan into one array
        # comparison; workers anywhere *near* their cap walk the exact
        # sequential remainder loop.  "Clearly" carries a relative margin
        # that strictly dominates the summation's accumulated rounding
        # (its float arithmetic differs from the loop's sequential
        # subtractions), so the fast path can only ever fire where the
        # reference loop provably keeps everything — bit-identity is
        # one-sided by construction, never a rounding race.  The totals
        # are summed *per worker* (bincount), not as global-cumsum
        # differences: a local sum's error scales with the worker's own
        # total — which the margin dominates — not with the whole flush's
        # cumulative spend.
        keep_len = np.zeros(pairs.num_pairs, dtype=np.int64)
        pair_totals = prefix[np.arange(pairs.num_pairs), budget_len]
        worker_totals = np.bincount(
            pairs.worker, weights=pair_totals, minlength=len(workers)
        )
        fits = worker_totals + 1e-6 * (1.0 + worker_totals) <= remaining0
        if np.any(fits):
            unconstrained = np.repeat(fits, np.diff(offsets))
            keep_len[unconstrained] = budget_len[unconstrained]
        for j in np.flatnonzero(~fits).tolist():
            lo, hi = int(offsets[j]), int(offsets[j + 1])
            remaining = remaining0[j]
            for p in range(lo, hi):
                z = int(budget_len[p])
                k = int(np.count_nonzero(prefix[p, 1 : z + 1] <= remaining + 1e-12))
                keep_len[p] = k
                if k:
                    remaining -= prefix[p, k]

        if np.array_equal(keep_len, budget_len):
            capped = instance
        else:
            capped = _slice_capped_instance(instance, keep_len)

        # The single home of the privacy-cap invariant: even if every
        # retained budget element of every pair is published this flush,
        # no worker can exceed their remaining shift budget.
        kept_total = prefix[np.arange(pairs.num_pairs), keep_len]
        cum = np.concatenate(([0.0], np.cumsum(kept_total)))
        per_worker = cum[offsets[1:]] - cum[offsets[:-1]]
        if not np.all(per_worker <= remaining0 + 1e-9):
            overdrawn = int(np.argmax(per_worker - remaining0))
            raise FlushBudgetError(
                f"flush cap violated for worker {workers[overdrawn].id}: "
                f"worst-case spend {per_worker[overdrawn]:.6f} exceeds "
                f"remaining budget {remaining0[overdrawn]:.6f}",
                worker_id=workers[overdrawn].id,
                spend=float(per_worker[overdrawn]),
                remaining=float(remaining0[overdrawn]),
            )
        return capped
