"""JSON codecs for solved flushes — the cache's persistence layer.

The flush-fingerprint cache (:mod:`repro.stream.cache`) earns its keep
across *runs*: repeated experiments replay identical (instance, noise)
pairs, and a service restart would otherwise start cold.  This module
encodes a full :class:`~repro.core.result.AssignmentResult` — tasks,
workers, utility model, CSR pair arrays, matching, privacy ledger,
release board — as plain JSON so the cache can snapshot to disk and
reload bit-identically.

Bit-identity holds because ``json`` serialises floats via ``repr`` and
parses them back to the same IEEE double, and every array is dumped as a
flat list of such floats/ints.  The one derived plane that is *not*
shipped — ``budget_prefix`` — is recomputed by ``PairArrays.__post_init__``
as the same ``np.cumsum`` over the same values, so it too matches.

What cannot round-trip raises :class:`SnapshotError`: utility models
built on value functions outside the registered codecs
(:class:`~repro.core.utility.LinearValue`,
:class:`~repro.core.utility.PowerValue`), or non-integer task/worker
ids.  The cache's snapshot writer catches it and skips those entries —
a snapshot is an optimisation, never a correctness dependency.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.core.effective import Release, ReleaseSet
from repro.core.result import AssignmentResult
from repro.core.utility import LinearValue, PowerValue, UtilityModel
from repro.datasets.workload import Task, Worker
from repro.errors import ReproError
from repro.matching.bipartite import Matching
from repro.privacy.accountant import PrivacyLedger
from repro.simulation.instance import ProblemInstance
from repro.simulation.pairs import PairArrays
from repro.spatial.geometry import Point

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "encode_result",
    "decode_result",
]

#: Version stamped into every encoded result (and the cache snapshot
#: envelope).  Decoders refuse other versions.
SNAPSHOT_VERSION = 1


class SnapshotError(ReproError):
    """A result (or snapshot) cannot be encoded/decoded faithfully."""


# -- value functions / utility model ----------------------------------------

_VALUE_FN_CODECS = {
    LinearValue: lambda fn: {"kind": "linear", "slope": fn.slope},
    PowerValue: lambda fn: {
        "kind": "power",
        "exponent": fn.exponent,
        "scale": fn.scale,
    },
}


def _encode_value_fn(fn: Any) -> dict[str, Any]:
    codec = _VALUE_FN_CODECS.get(type(fn))
    if codec is None:
        raise SnapshotError(
            f"no JSON codec for value function {type(fn).__name__}; "
            f"registered: {sorted(c.__name__ for c in _VALUE_FN_CODECS)}"
        )
    return codec(fn)


def _decode_value_fn(payload: Mapping[str, Any]) -> Any:
    kind = payload.get("kind")
    if kind == "linear":
        return LinearValue(slope=payload["slope"])
    if kind == "power":
        return PowerValue(exponent=payload["exponent"], scale=payload["scale"])
    raise SnapshotError(f"unknown value-function kind {kind!r}")


def _encode_model(model: UtilityModel) -> dict[str, Any]:
    return {
        "f_d": _encode_value_fn(model.f_d),
        "f_p": _encode_value_fn(model.f_p),
    }


def _decode_model(payload: Mapping[str, Any]) -> UtilityModel:
    return UtilityModel(
        f_d=_decode_value_fn(payload["f_d"]),
        f_p=_decode_value_fn(payload["f_p"]),
    )


# -- pair arrays ------------------------------------------------------------


def _encode_pairs(pairs: PairArrays) -> dict[str, Any]:
    return {
        "offsets": pairs.offsets.tolist(),
        "task": pairs.task.tolist(),
        "worker": pairs.worker.tolist(),
        "distance": pairs.distance.tolist(),
        "budget_matrix": pairs.budget_matrix.ravel().tolist(),
        "budget_width": int(pairs.budget_matrix.shape[1]),
        "budget_len": pairs.budget_len.tolist(),
        "task_value": pairs.task_value.tolist(),
    }


def _decode_pairs(payload: Mapping[str, Any]) -> PairArrays:
    width = max(int(payload["budget_width"]), 1)
    matrix = np.asarray(payload["budget_matrix"], dtype=np.float64).reshape(
        -1, width
    )
    return PairArrays(
        offsets=np.asarray(payload["offsets"], dtype=np.int64),
        task=np.asarray(payload["task"], dtype=np.int64),
        worker=np.asarray(payload["worker"], dtype=np.int64),
        distance=np.asarray(payload["distance"], dtype=np.float64),
        budget_matrix=matrix,
        budget_len=np.asarray(payload["budget_len"], dtype=np.int64),
        task_value=np.asarray(payload["task_value"], dtype=np.float64),
    )


# -- populations ------------------------------------------------------------


def _require_int_id(identifier: Any, kind: str) -> int:
    # JSON object keys and id columns only round-trip integer ids; the
    # whole streaming layer already assumes them.
    if not isinstance(identifier, (int, np.integer)) or isinstance(
        identifier, bool
    ):
        raise SnapshotError(f"{kind} id {identifier!r} is not an int")
    return int(identifier)


def _encode_tasks(tasks: tuple[Task, ...]) -> list[list[float]]:
    return [
        [
            _require_int_id(t.id, "task"),
            float(t.location[0]),
            float(t.location[1]),
            t.value,
            t.release_time,
        ]
        for t in tasks
    ]


def _encode_workers(workers: tuple[Worker, ...]) -> list[list[float]]:
    return [
        [
            _require_int_id(w.id, "worker"),
            float(w.location[0]),
            float(w.location[1]),
            w.radius,
        ]
        for w in workers
    ]


# -- the result codec -------------------------------------------------------


def encode_result(result: AssignmentResult) -> dict[str, Any]:
    """One solved flush as a JSON-ready dict.

    Raises
    ------
    SnapshotError
        When the result holds something without a registered codec (an
        exotic value function, non-integer ids).
    """
    for task_id, worker_id in result.matching:
        _require_int_id(task_id, "matched task")
        _require_int_id(worker_id, "matched worker")
    instance = result.instance
    return {
        "v": SNAPSHOT_VERSION,
        "method": result.method,
        "rounds": result.rounds,
        "publishes": result.publishes,
        "tasks": _encode_tasks(instance.tasks),
        "workers": _encode_workers(instance.workers),
        "model": _encode_model(instance.model),
        "pairs": _encode_pairs(instance.pairs),
        "matching": [[t, w] for t, w in result.matching],
        "ledger": [
            [_require_int_id(w, "ledger worker"), _require_int_id(t, "ledger task"), eps]
            for w, t, eps in result.ledger.events()
        ],
        "release_board": [
            [task_id, worker_id, [[r.value, r.epsilon] for r in releases.releases]]
            for (task_id, worker_id), releases in result.release_board.items()
        ],
    }


def decode_result(payload: Mapping[str, Any]) -> AssignmentResult:
    """Rebuild a result :func:`encode_result` wrote — bit-identical.

    ``elapsed_seconds`` is restored as ``0.0``: wall clock measures the
    host that solved, not the snapshot that replayed.
    """
    version = payload.get("v")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {version!r} "
            f"(this build speaks v{SNAPSHOT_VERSION})"
        )
    tasks = tuple(
        Task(
            id=int(row[0]),
            location=Point(row[1], row[2]),
            value=row[3],
            release_time=row[4],
        )
        for row in payload["tasks"]
    )
    workers = tuple(
        Worker(id=int(row[0]), location=Point(row[1], row[2]), radius=row[3])
        for row in payload["workers"]
    )
    pairs = _decode_pairs(payload["pairs"])
    offsets = pairs.offsets
    reachable = tuple(
        tuple(pairs.task[offsets[j] : offsets[j + 1]].tolist())
        for j in range(len(workers))
    )
    instance = ProblemInstance.from_arrays(
        tasks=tasks,
        workers=workers,
        model=_decode_model(payload["model"]),
        reachable=reachable,
        pairs=pairs,
    )
    ledger = PrivacyLedger()
    for worker_id, task_id, eps in payload["ledger"]:
        ledger.record(int(worker_id), int(task_id), eps)
    release_board = {
        (int(task_id), int(worker_id)): ReleaseSet(
            tuple(Release(value=value, epsilon=eps) for value, eps in releases)
        )
        for task_id, worker_id, releases in payload["release_board"]
    }
    return AssignmentResult(
        method=payload["method"],
        instance=instance,
        matching=Matching({int(t): int(w) for t, w in payload["matching"]}),
        ledger=ledger,
        rounds=payload["rounds"],
        publishes=payload["publishes"],
        elapsed_seconds=0.0,
        release_board=release_board,
    )
