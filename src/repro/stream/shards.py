"""Sharded flush execution: conflict-free spatial cuts + parallel solves.

A flush's :class:`~repro.simulation.instance.ProblemInstance` is a CSR
pair graph, and the round-based protocol never couples two pairs that
share neither a worker nor a task.  This module exploits that: the flush
is *cut* into independent shards along grid-cell boundaries
(:func:`cut_flush`), each shard becomes its own sub-instance
(:func:`build_shard_instance` — plain CSR slices via
:meth:`~repro.simulation.pairs.PairArrays.subset`), the engine solves the
shards independently (:class:`ShardedFlushExecutor` — sequentially or in
parallel via :mod:`concurrent.futures`), and the per-shard results merge
back deterministically (:func:`merge_shard_results`).

The **shard-cut invariant**: no worker and no task spans two shards.  The
cut is the connected-component structure of the bipartite feasibility
graph, coarsened by the grid cells of the task locations (points sharing
a cell stay together; a worker glues every cell it reaches).  An
oversized component simply *is* one shard — there is no way to split it
without cutting a worker in half, so it falls back to a single engine
run.

**Determinism**: the cut is a pure function of the instance; each
component is seeded from its own stable key (the smallest global worker
index it contains) through a :class:`ShardSeedSchedule`; and results are
merged in ascending component-key order.  Shard *grouping* (how
components are packed onto execution slots) therefore affects scheduling
only — the merged assignments, ledgers and release boards are
bit-identical across shard counts, across sequential/thread/process
execution, and across the pickle/shared-memory transports.

**Execution is planned, not guessed** (:mod:`repro.stream.costmodel`):
every flush gets a :class:`~repro.stream.costmodel.FlushPlan` — mode,
slot count, transport — either pinned by explicit ``shards=N`` settings
or chosen per flush by a calibrated :class:`~repro.stream.costmodel.
FlushPlanner` (``shards="auto"``).  Two fixed costs that used to make
sharding a regression are engineered away here:

* **Zero-copy shard transport** — for process-parallel flushes above a
  size floor, the parent's CSR planes (plus numeric task/worker record
  planes) are staged once into a shared-memory segment
  (:class:`~repro.core.workspace.ShmArena`) and workers receive a tiny
  picklable handle instead of pickled sub-instances
  (:func:`_solve_shm_group` attaches, slices, solves).  Falls back to
  the pickle payload when shm is unavailable or the flush is small.
* **Persistent warm pools** — process/thread pools live in a
  process-wide registry keyed by ``(kind, max_workers)`` and survive
  executor :meth:`~ShardedFlushExecutor.close`, so streams stop paying
  pool spawn per run.  Broken pools are detected and respawned (a
  ``pool.respawn`` tracer event); :func:`shutdown_warm_pools` tears
  everything down (registered ``atexit``).
"""

from __future__ import annotations

import atexit
import math
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.engine import ConflictEliminationSolver
from repro.core.result import AssignmentResult
from repro.core.workspace import (
    ShmArena,
    ShmHandle,
    attach_planes,
    shm_available,
    sweep_stale_segments,
)
from repro.datasets.workload import Task, Worker
from repro.errors import ConfigurationError, FlushTimeoutError, InjectedFault
from repro.obs.tracer import NULL_TRACER, stopwatch
from repro.matching.bipartite import Matching
from repro.privacy.accountant import PrivacyLedger
from repro.simulation.instance import ProblemInstance
from repro.simulation.pairs import PairArrays
from repro.spatial.geometry import Point
from repro.spatial.index import grid_cell_labels
from repro.stream.costmodel import FlushPlan, FlushPlanner

if TYPE_CHECKING:  # runtime import is deferred to break the package cycle
    from repro.core.registry import Solver

__all__ = [
    "ShardComponent",
    "ShardCut",
    "ShardSeedSchedule",
    "ShardedFlushExecutor",
    "PARALLEL_MODES",
    "SHARD_TRANSPORTS",
    "cut_flush",
    "build_shard_instance",
    "merge_shard_results",
    "shutdown_warm_pools",
]

# Re-exported from the unified options layer (the single source of truth).
from repro.api.options import PARALLEL_MODES  # noqa: E402

#: Transport settings of :class:`ShardedFlushExecutor`: ``"auto"`` lets
#: the plan decide (shm above the size floor, pickle otherwise/fallback),
#: the other two force one transport for process-parallel flushes.
SHARD_TRANSPORTS = ("auto", "shm", "pickle")

# Bound once for the trusted record-rebuild loops in the shm transport:
# frozen slotted dataclasses are assembled through these on the pool
# worker side, bypassing ``__init__`` for planes that are known to have
# round-tripped already-validated records.
_NEW = object.__new__
_SET = object.__setattr__


@dataclass(frozen=True, slots=True)
class ShardComponent:
    """One conflict-free unit of a flush.

    ``key`` is the component's canonical identity — the smallest global
    worker index it contains — and is what the RNG schedule and the merge
    order key on, so it must not depend on shard count or scheduling.
    ``tasks`` / ``workers`` are sorted global indices into the parent
    instance.
    """

    key: int
    tasks: tuple[int, ...]
    workers: tuple[int, ...]
    pair_count: int


@dataclass(frozen=True, slots=True)
class ShardCut:
    """The conflict-free partition of one flush instance.

    ``components`` are sorted by key.  ``orphan_tasks`` (no feasible
    worker) and ``orphan_workers`` (no reachable task) belong to no shard:
    they cannot take part in any assignment, so solving them would be a
    no-op.
    """

    components: tuple[ShardComponent, ...]
    orphan_tasks: tuple[int, ...]
    orphan_workers: tuple[int, ...]

    @property
    def num_components(self) -> int:
        return len(self.components)


def _cut_cell_size(points: np.ndarray) -> float:
    """Cell size for the shard cut: ~0.5 tasks per cell.

    Finer than :class:`~repro.spatial.index.GridIndex`'s query-optimised
    heuristic (~2 points per cell) on purpose — cells only *glue* tasks
    together, the workers' reach does the real connecting, so coarse
    cells just forfeit cut opportunities.  With ~2 cells per task the
    cell partition approaches the exact bipartite-component cut while
    the union-find stays small.
    """
    width = float(points[:, 0].max() - points[:, 0].min())
    height = float(points[:, 1].max() - points[:, 1].min())
    span = max(width, height)
    cell = span / max(1.0, math.sqrt(2.0 * points.shape[0]))
    # A denormal span can underflow the quotient to exactly 0.0; one
    # all-enclosing cell is the right degenerate answer either way.
    return cell if cell > 0.0 else 1.0


class _UnionFind:
    """Path-halving union-find over ``n`` dense labels."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            if rb < ra:  # smaller root wins: keeps labels deterministic
                ra, rb = rb, ra
            self.parent[rb] = ra


#: Default coalescing floor (pairs per shard): components smaller than
#: this merge, in key order, into one execution unit.  Dust components
#: are plentiful in spatial workloads and each one pays a fixed engine +
#: sub-instance cost; coalescing keeps that overhead amortised.
MIN_SHARD_PAIRS = 192


def cut_flush(
    instance: ProblemInstance,
    min_shard_pairs: int = MIN_SHARD_PAIRS,
    micro_shortcut: bool = True,
) -> ShardCut:
    """Compute the conflict-free grid-cell cut of one flush instance.

    Tasks are binned into grid cells (:meth:`GridIndex.cell_labels` over
    the task locations); every worker unions the cells of its reachable
    tasks; the resulting cell components — equivalently, a coarsening of
    the bipartite feasibility graph's connected components — are the
    shards.  No worker or task can span two of them by construction.

    ``min_shard_pairs`` coalesces small components (ascending key order)
    into units of at least that many pairs; the trailing dust remainder
    folds into the last dust-formed unit, so at most one unit (an
    all-dust flush) sits below the threshold.  The rule is part of the
    *cut*, not the scheduling: for a fixed threshold the units — and
    therefore every per-unit noise stream — are identical whatever the
    shard count or parallel mode.  A component at or above the threshold
    (in particular any oversized one) stands alone as a single shard;
    dust never merges into it.

    ``micro_shortcut`` enables the micro-flush fast path: when the whole
    flush holds at most ``min_shard_pairs`` pairs (and the threshold is
    active), *every* component is dust, so coalescing provably collapses
    the cut to exactly one unit — all busy tasks and workers, keyed by
    the smallest busy worker index.  That unit is computed with a few
    array ops, skipping grid labels and union-find entirely; the
    property suite pins it identical to the full route.  The flag exists
    for that pin, not for callers.
    """
    pairs = instance.pairs
    all_tasks = np.arange(instance.num_tasks, dtype=np.int64)
    all_workers = np.arange(instance.num_workers, dtype=np.int64)
    if pairs.num_pairs == 0:
        return ShardCut(
            components=(),
            orphan_tasks=tuple(all_tasks.tolist()),
            orphan_workers=tuple(all_workers.tolist()),
        )

    offsets = pairs.offsets
    pair_task = pairs.task
    worker_pair_counts = (offsets[1:] - offsets[:-1]).astype(np.int64)

    if micro_shortcut and min_shard_pairs > 1 and pairs.num_pairs <= min_shard_pairs:
        busy_workers = np.flatnonzero(worker_pair_counts > 0)
        task_has_pair = np.zeros(instance.num_tasks, dtype=bool)
        task_has_pair[pair_task] = True
        component = ShardComponent(
            key=int(busy_workers[0]),
            tasks=tuple(np.flatnonzero(task_has_pair).tolist()),
            workers=tuple(busy_workers.tolist()),
            pair_count=int(pairs.num_pairs),
        )
        return ShardCut(
            components=(component,),
            orphan_tasks=tuple(np.flatnonzero(~task_has_pair).tolist()),
            orphan_workers=tuple(np.flatnonzero(worker_pair_counts == 0).tolist()),
        )

    points = np.asarray([t.location for t in instance.tasks], dtype=float)
    labels = grid_cell_labels(points, _cut_cell_size(points))
    busy_workers = np.flatnonzero(worker_pair_counts > 0)

    # Union every worker's cells through its *first* cell.  One edge per
    # (worker-first-cell, pair-cell) suffices for connectivity, and
    # deduplicating the edge list first keeps the union-find loop tiny.
    pair_cells = labels[pair_task]
    anchor_cells = np.repeat(
        pair_cells[offsets[busy_workers]], worker_pair_counts[busy_workers]
    )
    num_cells = int(labels.max()) + 1
    edge_keys = np.unique(anchor_cells * num_cells + pair_cells)
    uf = _UnionFind(num_cells)
    for key in edge_keys.tolist():
        a, b = divmod(key, num_cells)
        if a != b:
            uf.union(a, b)
    cell_root = np.fromiter(
        (uf.find(c) for c in range(len(uf.parent))), dtype=np.int64
    )

    # Group tasks and workers by their cell's root; both index arrays are
    # ascending, so a stable sort by root keeps them ascending per group
    # and the first worker of a group is its canonical key.
    task_has_pair = np.zeros(instance.num_tasks, dtype=bool)
    task_has_pair[pair_task] = True
    busy_tasks = np.flatnonzero(task_has_pair)
    task_roots = cell_root[labels[busy_tasks]]
    worker_roots = cell_root[pair_cells[offsets[busy_workers]]]

    components = []
    t_order = np.argsort(task_roots, kind="stable")
    w_order = np.argsort(worker_roots, kind="stable")
    t_groups, t_starts = np.unique(task_roots[t_order], return_index=True)
    w_groups, w_starts = np.unique(worker_roots[w_order], return_index=True)
    t_split = dict(zip(t_groups.tolist(), np.split(busy_tasks[t_order], t_starts[1:])))
    for root, group_workers in zip(
        w_groups.tolist(), np.split(busy_workers[w_order], w_starts[1:])
    ):
        components.append(
            ShardComponent(
                key=int(group_workers[0]),
                tasks=tuple(t_split[root].tolist()),
                workers=tuple(group_workers.tolist()),
                pair_count=int(worker_pair_counts[group_workers].sum()),
            )
        )
    components.sort(key=lambda c: c.key)
    return ShardCut(
        components=tuple(_coalesce(components, min_shard_pairs)),
        orphan_tasks=tuple(np.flatnonzero(~task_has_pair).tolist()),
        orphan_workers=tuple(np.flatnonzero(worker_pair_counts == 0).tolist()),
    )


def _coalesce(
    components: Sequence[ShardComponent], min_shard_pairs: int
) -> list[ShardComponent]:
    """Coalesce key-ordered dust components into >=threshold units.

    A component at or above the threshold stands alone — dust never
    rides along on it (that would re-key its noise stream and fatten the
    parallel critical path).  Dust components accumulate, in key order,
    into merged units of at least ``min_shard_pairs``; the trailing
    remainder folds into the last dust-formed unit, so at most one unit
    (all-dust flushes) ends up below the threshold.  The union of
    conflict-free components is itself conflict-free, so every merged
    unit is still a valid shard; its key is the smallest worker index it
    contains — the first member's, since input is key-sorted.
    """
    if min_shard_pairs <= 1:
        return list(components)
    units: list[ShardComponent] = []
    bucket: list[ShardComponent] = []
    bucket_pairs = 0
    last_dust_unit: int | None = None
    for component in components:
        if component.pair_count >= min_shard_pairs:
            units.append(component)
            continue
        bucket.append(component)
        bucket_pairs += component.pair_count
        if bucket_pairs >= min_shard_pairs:
            units.append(_merge_components(bucket))
            last_dust_unit = len(units) - 1
            bucket, bucket_pairs = [], 0
    if bucket:
        if last_dust_unit is not None:
            units[last_dust_unit] = _merge_components(
                [units[last_dust_unit], *bucket]
            )
        else:
            units.append(_merge_components(bucket))
    units.sort(key=lambda c: c.key)
    return units


def _merge_components(members: Sequence[ShardComponent]) -> ShardComponent:
    if len(members) == 1:
        return members[0]
    tasks: list[int] = []
    workers: list[int] = []
    for member in members:
        tasks.extend(member.tasks)
        workers.extend(member.workers)
    return ShardComponent(
        key=min(m.key for m in members),
        tasks=tuple(sorted(tasks)),
        workers=tuple(sorted(workers)),
        pair_count=sum(m.pair_count for m in members),
    )


def build_shard_instance(
    instance: ProblemInstance, component: ShardComponent
) -> ProblemInstance:
    """One component's sub-instance: CSR slices, locally renumbered.

    Task and worker *records* (with their global public ids) are carried
    over verbatim, so per-shard matchings and ledgers are keyed by global
    ids and merge by plain union.
    """
    sub_pairs = instance.pairs.subset(component.workers, component.tasks)
    # One flat conversion + per-worker list slices beats per-worker numpy
    # fancy indexing by a wide margin on dust-sized components.
    pair_tasks = sub_pairs.task.tolist()
    bounds = sub_pairs.offsets.tolist()
    reachable = tuple(
        tuple(pair_tasks[lo:hi]) for lo, hi in zip(bounds, bounds[1:])
    )
    return ProblemInstance.from_arrays(
        tasks=[instance.tasks[i] for i in component.tasks],
        workers=[instance.workers[j] for j in component.workers],
        model=instance.model,
        reachable=reachable,
        pairs=sub_pairs,
    )


@dataclass(frozen=True, slots=True)
class ShardSeedSchedule:
    """Per-component noise streams derived from one picklable base key.

    Component ``key`` gets ``default_rng((*base, key))`` — stable across
    shard counts, shard grouping and process boundaries, which is what
    makes the sharded path's results independent of how (and where) the
    shards were executed.
    """

    base: tuple[int, ...]

    def generator(self, key: int) -> np.random.Generator:
        return np.random.default_rng((*self.base, int(key)))


def merge_shard_results(
    instance: ProblemInstance,
    method: str,
    keyed_results: Sequence[tuple[int, AssignmentResult]],
    elapsed_seconds: float,
) -> AssignmentResult:
    """Deterministic union of per-shard results (ascending key order).

    Shards are disjoint in workers and tasks, so matchings and release
    boards union without collisions; ledger events are re-recorded
    shard-by-shard in key order so the merged audit trail is reproducible.
    ``rounds`` is the max over shards (the parallel protocol depth);
    ``publishes`` is the total.
    """
    matching: dict[object, object] = {}
    ledger = PrivacyLedger()
    board: dict[tuple[object, object], object] = {}
    rounds = 0
    publishes = 0
    for _, result in sorted(keyed_results, key=lambda kr: kr[0]):
        for task_id, worker_id in result.matching:
            matching[task_id] = worker_id
        for worker_id, task_id, epsilon in result.ledger.events():
            ledger.record(worker_id, task_id, epsilon)
        board.update(result.release_board)
        rounds = max(rounds, result.rounds)
        publishes += result.publishes
    return AssignmentResult(
        method=method,
        instance=instance,
        matching=Matching(matching),
        ledger=ledger,
        rounds=rounds,
        publishes=publishes,
        elapsed_seconds=elapsed_seconds,
        release_board=board,
    )


def _solve_component_group(
    solver: "Solver",
    base: tuple[int, ...],
    group: list[tuple[int, ProblemInstance]],
    workspace=None,
    tracer=NULL_TRACER,
) -> list[tuple[int, AssignmentResult]]:
    """Solve one shard group sequentially (runs in a pool worker).

    Module-level so :class:`ProcessPoolExecutor` can pickle it; the seed
    schedule is rebuilt from ``base`` on the far side of the boundary.
    ``workspace`` (an :class:`~repro.core.workspace.EngineWorkspace`) and
    ``tracer`` (a :class:`repro.obs.Tracer`) are only ever passed on
    in-process sequential execution — pool workers get the defaults and
    allocate / no-op per solve.
    """
    schedule = ShardSeedSchedule(base)
    keys = [key for key, _ in group]
    instances = [sub for _, sub in group]
    seeds = [schedule.generator(key) for key in keys]
    solve_shards = getattr(solver, "solve_shards", None)
    if solve_shards is not None:
        results = solve_shards(instances, seeds, workspace=workspace, tracer=tracer)
    else:
        results = [
            solver.solve(sub, seed=seed) for sub, seed in zip(instances, seeds)
        ]
    return list(zip(keys, results))


def _solve_shm_group(
    solver: "Solver",
    base: tuple[int, ...],
    handle: ShmHandle,
    meta: tuple[tuple[int, int, int, int, int], ...],
    model,
) -> list[tuple[int, AssignmentResult]]:
    """Solve one shard group from shared-memory planes (pool worker side).

    The zero-copy counterpart of shipping a pickled payload to
    :func:`_solve_component_group`: the worker attaches the staged
    segment once (:func:`~repro.core.workspace.attach_planes`, cached
    per segment name), rebuilds the parent
    :class:`~repro.simulation.pairs.PairArrays` as views, slices each
    component out with ``subset`` (which copies, so nothing in the
    returned results aliases the segment), and reconstructs each
    component's :class:`Task`/:class:`Worker` records from the numeric
    record planes — batched through ``.tolist()`` so the rebuild does a
    handful of array conversions per component instead of ~7 numpy
    scalar reads per record.  Python objects never cross the boundary:
    pickling a few hundred dataclass records costs more than every
    numeric plane combined, which is exactly what this transport is for.
    ``meta`` rows are
    ``(key, task_offset, task_len, worker_offset, worker_len)`` into the
    staged component-index planes.  Bit-identity with the pickle path is
    pinned by the property suite (float64 planes round-trip every
    record field exactly).
    """
    planes = attach_planes(handle)
    parent = PairArrays.from_planes(planes)
    task_id = planes["rec_task_id"]
    task_num = planes["rec_task_num"]
    worker_id = planes["rec_worker_id"]
    worker_num = planes["rec_worker_num"]
    comp_tasks = planes["comp_task_idx"]
    comp_workers = planes["comp_worker_idx"]
    group: list[tuple[int, ProblemInstance]] = []
    for key, t_off, t_len, w_off, w_len in meta:
        t_idx = comp_tasks[t_off : t_off + t_len]
        w_idx = comp_workers[w_off : w_off + w_len]
        sub_pairs = parent.subset(w_idx, t_idx)
        # Trusted rebuild: the planes round-tripped a parent whose records
        # already passed ``__post_init__`` validation (float64 is exact for
        # every field), so construct via ``object.__new__`` and skip the
        # dataclass ``__init__``/``__post_init__``.  The transposed
        # ``.tolist()`` hands each field as one flat column instead of a
        # throwaway per-record list.  Records dominate the worker-side
        # handoff cost, so the ~30% per record compounds.
        t_xs, t_ys, t_vals, t_rels = task_num[t_idx].T.tolist()
        tasks = []
        for tid, x, y, value, release in zip(
            task_id[t_idx].tolist(), t_xs, t_ys, t_vals, t_rels
        ):
            record = _NEW(Task)
            _SET(record, "id", tid)
            _SET(record, "location", Point(x, y))
            _SET(record, "value", value)
            _SET(record, "release_time", release)
            tasks.append(record)
        w_xs, w_ys, w_rads = worker_num[w_idx].T.tolist()
        workers = []
        for wid, x, y, radius in zip(worker_id[w_idx].tolist(), w_xs, w_ys, w_rads):
            record = _NEW(Worker)
            _SET(record, "id", wid)
            _SET(record, "location", Point(x, y))
            _SET(record, "radius", radius)
            workers.append(record)
        # Slice the flat pair list per worker via the CSR bounds in one
        # pass — much cheaper than per-worker fancy indexing.
        pair_tasks = sub_pairs.task.tolist()
        bounds = sub_pairs.offsets.tolist()
        reachable = tuple(
            tuple(pair_tasks[lo:hi]) for lo, hi in zip(bounds, bounds[1:])
        )
        group.append(
            (key, ProblemInstance.from_arrays(tasks, workers, model, reachable, sub_pairs))
        )
    return _solve_component_group(solver, base, group)


def _group_components(
    components: Sequence[ShardComponent], num_shards: int
) -> list[list[ShardComponent]]:
    """Pack components onto ``num_shards`` slots, balanced by pair count.

    Greedy longest-processing-time: heaviest component first, onto the
    lightest slot (ties: lowest slot index).  Deterministic, and — because
    execution is per-component-seeded — free to change without changing
    results.
    """
    slots: list[list[ShardComponent]] = [[] for _ in range(max(1, num_shards))]
    loads = [0] * len(slots)
    for component in sorted(components, key=lambda c: (-c.pair_count, c.key)):
        slot = loads.index(min(loads))
        slots[slot].append(component)
        loads[slot] += component.pair_count
    return [slot for slot in slots if slot]


# -- warm pool registry -------------------------------------------------------

#: Process-wide pools keyed by ``(kind, max_workers)``.  Pool spawn
#: (tens of ms for processes, plus a re-import per worker) used to be
#: paid per executor; keeping pools warm amortises it across flushes
#: *and* across streams in one process.
_WARM_POOLS: dict[tuple[str, int], Executor] = {}


def _pool_broken(pool: Executor) -> bool:
    # ProcessPoolExecutor sets ``_broken`` when a worker dies; thread
    # pools never break.  Private, but stable across supported versions
    # and the only health signal short of submitting a probe job.
    return bool(getattr(pool, "_broken", False))


def _warm_pool(kind: str, max_workers: int) -> Executor:
    """The warm pool for ``(kind, max_workers)``, health-checked.

    A broken pool is discarded and respawned on the way in, so callers
    always receive a usable executor.
    """
    key = (kind, max_workers)
    pool = _WARM_POOLS.get(key)
    if pool is not None and not _pool_broken(pool):
        return pool
    if pool is not None:
        _discard_warm_pool(kind, max_workers)
    if kind == "thread":
        pool = ThreadPoolExecutor(max_workers=max_workers)
    else:
        pool = ProcessPoolExecutor(max_workers=max_workers)
    _WARM_POOLS[key] = pool
    return pool


def _discard_warm_pool(kind: str, max_workers: int) -> None:
    pool = _WARM_POOLS.pop((kind, max_workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_warm_pools() -> None:
    """Shut down every warm shard pool (tests; registered ``atexit``).

    Also sweeps shm segments stranded by *previous* crashed runs
    (:func:`~repro.core.workspace.sweep_stale_segments`): any process
    that used pools janitors its predecessors on the way out.
    """
    for key in list(_WARM_POOLS):
        pool = _WARM_POOLS.pop(key)
        pool.shutdown(wait=True, cancel_futures=True)
    sweep_stale_segments()


atexit.register(shutdown_warm_pools)


class ShardedFlushExecutor:
    """Run one solver over the conflict-free shards of flush instances.

    Parameters
    ----------
    solver:
        Any registry solver.  :class:`ConflictEliminationSolver` subclasses
        go through their ``solve_shards`` entry point; anything else falls
        back to per-shard ``solve`` calls.
    num_shards:
        Execution slots to pack components into (the parallel width) when
        no ``planner`` is given — the executor then pins a forced
        :class:`~repro.stream.costmodel.FlushPlanner` to this count.
        Components are the atomic units: a flush that is one giant
        component runs as one shard regardless of this setting.
    parallel:
        ``"off"`` (sequential, the reference path), ``"thread"``, or
        ``"process"`` (:mod:`concurrent.futures`; the solver and shard
        instances must pickle, which all registry methods do).
    max_workers:
        Pool size for the parallel modes (default: ``num_shards``).
        Also the warm-pool registry key, so streams sharing a width
        share a pool.
    min_shard_pairs:
        Coalescing floor forwarded to :func:`cut_flush`.  Results depend
        on this threshold (it shapes the per-unit noise streams) but
        never on ``num_shards``/``parallel``/``max_workers``/transport.
    workspace:
        Optional :class:`~repro.core.workspace.EngineWorkspace` reused by
        the in-process sequential solves (the single-unit fast path and
        sequential groups).  Pool workers never see it.
    tracer:
        A :class:`repro.obs.Tracer` recording the flush phases
        (``flush.cut`` / ``flush.plan`` / ``flush.build`` /
        ``flush.solve`` / ``flush.merge``) under the caller's current
        span, plus ``shard.shm_stage`` / ``pool.respawn`` point events.
        Pool workers never see it (their spans would land in another
        process); the no-op default costs nothing.
    planner:
        A :class:`~repro.stream.costmodel.FlushPlanner` choosing mode /
        slot count / transport per flush (``shards="auto"``).  ``None``
        builds a forced planner from ``num_shards``/``parallel`` —
        legacy pinned behaviour, still with ``predicted_seconds`` on the
        plan.
    transport:
        ``"auto"`` (the plan decides: shm above the size floor when
        available, pickle otherwise), or force ``"shm"`` / ``"pickle"``
        for process-parallel flushes.  A forced ``"shm"`` still falls
        back to pickle when shared memory is unusable on the host.
    flush_timeout:
        Watchdog deadline (seconds) for one pooled flush solve.  When a
        pooled future outlives it, the pool is discarded (it may be
        wedged) and the flush degrades one ladder rung.  ``None`` (the
        default) disables the watchdog.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`: deterministic
        ``pool_crash`` / ``shm_attach`` / ``solver_timeout`` injection,
        keyed by the flush's seed-schedule base and the retry attempt so
        every failure replays bit-identically.

    The executor leases pools from the process-wide warm registry —
    :meth:`close` drops the reference (and unlinks the shm arena) but
    leaves the pool warm for the next stream; the *failure* path instead
    discards the pool outright and unlinks the arena, so a raising solve
    leaks neither ``/dev/shm`` space nor a possibly-poisoned pool.

    **Degradation ladder.**  Pool breaks, watchdog timeouts, shm
    failures and injected faults never fail the flush outright: the
    executor first respawns a broken pool with capped exponential
    backoff (``POOL_RESPAWN_ATTEMPTS``), and when a rung is exhausted it
    re-executes the *same cut* one rung down — shm transport → pickle
    transport → sequential in-process → single-slot sequential.  The cut
    defines every noise stream, so every rung is bit-identical: a
    masked failure costs latency, never results.  The walk is recorded
    in :attr:`last_degraded` (``None`` on a clean flush) and as
    ``flush.degrade`` tracer events.
    """

    #: Broken-pool respawn budget per flush (beyond the first attempt),
    #: with capped exponential backoff between attempts.
    POOL_RESPAWN_ATTEMPTS = 2
    RESPAWN_BACKOFF_SECONDS = 0.05
    RESPAWN_BACKOFF_CAP = 0.5

    def __init__(
        self,
        solver: "Solver",
        num_shards: int = 1,
        parallel: str = "off",
        max_workers: int | None = None,
        min_shard_pairs: int = MIN_SHARD_PAIRS,
        workspace=None,
        tracer=NULL_TRACER,
        planner: FlushPlanner | None = None,
        transport: str = "auto",
        flush_timeout: float | None = None,
        fault_plan=None,
    ):
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if parallel not in PARALLEL_MODES:
            raise ConfigurationError(
                f"unknown parallel mode {parallel!r}; choose from {PARALLEL_MODES}"
            )
        if transport not in SHARD_TRANSPORTS:
            raise ConfigurationError(
                f"unknown shard transport {transport!r}; "
                f"choose from {SHARD_TRANSPORTS}"
            )
        self.solver = solver
        self.num_shards = num_shards
        self.parallel = parallel
        self.max_workers = max_workers or num_shards
        self.min_shard_pairs = min_shard_pairs
        self.workspace = workspace
        self.tracer = tracer
        self.transport = transport
        if flush_timeout is not None and not flush_timeout > 0:
            raise ConfigurationError(
                f"flush_timeout must be positive or None, got {flush_timeout!r}"
            )
        self.flush_timeout = flush_timeout
        self.fault_plan = fault_plan
        #: Ladder walk of the most recent flush: ``None`` when the flush
        #: ran clean, else an arrow chain of plan labels
        #: (``"proc:4+shm->proc:4->seq"``).
        self.last_degraded: str | None = None
        if planner is None:
            planner = FlushPlanner(
                min_shard_pairs=min_shard_pairs,
                parallel=parallel,
                forced_shards=num_shards,
                max_workers=self.max_workers,
                shm_ok=transport != "pickle" and shm_available(),
            )
        self.planner = planner
        self._pool: Executor | None = None
        self._pool_kind: str | None = None
        self._arena: ShmArena | None = None

    # -- lifecycle ---------------------------------------------------------

    def _ensure_pool(self, kind: str) -> Executor:
        pool = _warm_pool(kind, self.max_workers)
        self._pool = pool
        self._pool_kind = kind
        return pool

    def close(self) -> None:
        """Release executor-owned resources (idempotent).

        Unlinks this executor's shm arena segment; the worker pool is
        *not* shut down — pools are process-wide and stay warm for the
        next stream (:func:`shutdown_warm_pools` tears them down).
        """
        self._pool = None
        self._pool_kind = None
        if self._arena is not None:
            self._arena.close()

    def _fail(self) -> None:
        """Failure-path teardown: a raising solve must leak nothing.

        Unlike :meth:`close`, the pool is discarded from the warm
        registry and shut down — it may hold in-flight futures against
        whatever state just raised — and the arena segment is unlinked.
        Extends the session layer's close-on-raise guarantee to the
        zero-copy transport.
        """
        if self._pool is not None and self._pool_kind is not None:
            _discard_warm_pool(self._pool_kind, self.max_workers)
        self._pool = None
        self._pool_kind = None
        if self._arena is not None:
            self._arena.close()

    def __enter__(self) -> "ShardedFlushExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- solving -----------------------------------------------------------

    def solve(
        self, instance: ProblemInstance, schedule: ShardSeedSchedule
    ) -> AssignmentResult:
        """The merged result of one sharded flush solve."""
        result, _, _ = self.solve_planned(instance, schedule)
        return result

    def solve_with_cut(
        self, instance: ProblemInstance, schedule: ShardSeedSchedule
    ) -> tuple[AssignmentResult, ShardCut]:
        """As :meth:`solve`, also returning the cut (for observability)."""
        result, cut, _ = self.solve_planned(instance, schedule)
        return result, cut

    def solve_planned(
        self, instance: ProblemInstance, schedule: ShardSeedSchedule
    ) -> tuple[AssignmentResult, ShardCut, FlushPlan]:
        """Cut, plan, and solve one flush; returns (result, cut, plan).

        The plan (mode / slot count / transport) is a pure perf
        decision: results are bit-identical across every plan the
        executor can produce for a fixed ``min_shard_pairs``.
        """
        try:
            return self._solve_planned(instance, schedule)
        except BaseException:
            self._fail()
            raise

    def _plan(self, pairs: int, cut: ShardCut, single_direct: bool) -> FlushPlan:
        plan = self.planner.plan(pairs, max(cut.num_components, 1), single_direct)
        if plan.mode == "process" and self.transport != "auto":
            forced = self.transport
            if forced == "shm" and not shm_available():
                forced = "pickle"
            if forced != plan.transport:
                plan = replace(plan, transport=forced)
        return plan

    def _solve_planned(
        self, instance: ProblemInstance, schedule: ShardSeedSchedule
    ) -> tuple[AssignmentResult, ShardCut, FlushPlan]:
        tracer = self.tracer
        self.last_degraded = None
        watch = stopwatch()
        with watch:
            with tracer.span("flush.cut"):
                cut = cut_flush(instance, min_shard_pairs=self.min_shard_pairs)

            # Single-unit fast path (the common case once dust coalesces):
            # solve the flush instance directly with the unit's scheduled
            # seed — bit-identical results, none of the slice/rebuild/
            # re-record overhead.  Safe when the unit covers the whole
            # instance (the sub-instance would be a verbatim copy), and for
            # the engine family even with orphans: orphan tasks/workers own
            # no pairs, engine noise is drawn per *pair* in CSR order, and
            # results are keyed by public ids, so dropping orphans cannot
            # change anything (the executor tests pin fast == slow).  A
            # solver outside the engine family could consume randomness per
            # worker, so orphans disqualify it there.
            single_direct = False
            if len(cut.components) == 1:
                whole_cover = not cut.orphan_tasks and not cut.orphan_workers
                single_direct = whole_cover or isinstance(
                    self.solver, ConflictEliminationSolver
                )

            with tracer.span("flush.plan"):
                plan = self._plan(instance.pairs.num_pairs, cut, single_direct)

            if single_direct:
                key = cut.components[0].key
                with tracer.span("flush.solve"):
                    ((_, result),) = _solve_component_group(
                        self.solver,
                        schedule.base,
                        [(key, instance)],
                        self.workspace,
                        tracer,
                    )
                return result, cut, plan

            walked = [plan]
            while True:
                rung = walked[-1]
                try:
                    keyed_results = self._execute_plan(
                        instance, schedule, cut, rung, tracer
                    )
                    break
                except (
                    BrokenProcessPool,
                    FlushTimeoutError,
                    InjectedFault,
                    OSError,
                ) as exc:
                    lower = self._degraded_plan(rung)
                    if lower is None:
                        raise
                    # The failed rung may leave a poisoned pool and a
                    # half-staged arena behind; drop both before re-
                    # executing.  The cut (hence every noise stream) is
                    # untouched, so the lower rung is bit-identical.
                    if self._pool is not None and self._pool_kind is not None:
                        _discard_warm_pool(self._pool_kind, self.max_workers)
                        self._pool = None
                        self._pool_kind = None
                    if self._arena is not None:
                        self._arena.close()
                    tracer.event("flush.degrade")
                    walked.append(lower)
                    del exc
            if len(walked) > 1:
                self.last_degraded = "->".join(step.label for step in walked)

            with tracer.span("flush.merge"):
                merged = merge_shard_results(
                    instance,
                    self.solver.name,
                    keyed_results,
                    elapsed_seconds=watch.elapsed,
                )
        return merged, cut, plan

    # -- the degradation ladder --------------------------------------------

    def _degraded_plan(self, plan: FlushPlan) -> FlushPlan | None:
        """The next rung down, or ``None`` at the bottom.

        shm transport → pickle transport → sequential (same slot count)
        → single-slot sequential.  Mode/transport/grouping never touch
        the noise streams, so every rung solves to the same bits; the
        bottom rung involves no pool, no shm and no watchdog, so it can
        only fail the way the reference path fails.
        """
        if plan.mode == "process" and plan.transport == "shm":
            return replace(plan, transport="pickle")
        if plan.mode in ("thread", "process"):
            return replace(plan, mode="seq", transport="inline")
        if plan.mode == "seq" and plan.shards != 1:
            return replace(plan, shards=1)
        return None

    def _execute_plan(
        self,
        instance: ProblemInstance,
        schedule: ShardSeedSchedule,
        cut: ShardCut,
        plan: FlushPlan,
        tracer,
    ) -> list[tuple[int, AssignmentResult]]:
        """Build and solve one flush under one plan (one ladder rung)."""
        groups = _group_components(cut.components, plan.shards)
        pooled = plan.mode in ("thread", "process") and len(groups) > 1
        use_shm = pooled and plan.mode == "process" and plan.transport == "shm"

        with tracer.span("flush.build"):
            if use_shm:
                handle, metas = self._stage_shm(instance, groups)
                jobs = [
                    (
                        _solve_shm_group,
                        (self.solver, schedule.base, handle, meta, instance.model),
                    )
                    for meta in metas
                ]
            else:
                payload = [
                    [
                        (component.key, build_shard_instance(instance, component))
                        for component in group
                    ]
                    for group in groups
                ]
                jobs = [
                    (_solve_component_group, (self.solver, schedule.base, group))
                    for group in payload
                ]

        with tracer.span("flush.solve"):
            if not pooled:
                keyed_results: list[tuple[int, AssignmentResult]] = []
                for group in payload:
                    keyed_results.extend(
                        _solve_component_group(
                            self.solver, schedule.base, group, self.workspace, tracer
                        )
                    )
                return keyed_results
            kind = "thread" if plan.mode == "thread" else "process"
            return self._run_pooled(kind, jobs, flush_key=schedule.base)

    # -- pooled execution --------------------------------------------------

    def _run_pooled(
        self, kind: str, jobs, flush_key: tuple[int, ...] = ()
    ) -> list[tuple[int, AssignmentResult]]:
        """Submit one flush's job groups to the warm pool, watchdogged.

        A crashed worker poisons the whole pool, but the flush itself is
        retryable (shard solves are pure): broken pools are respawned
        with capped exponential backoff up to ``POOL_RESPAWN_ATTEMPTS``
        extra submits.  A flush that outlives ``flush_timeout`` raises
        :class:`~repro.errors.FlushTimeoutError` after discarding the
        (possibly wedged) pool; the caller's ladder takes it from there.
        Injected ``pool_crash`` faults enter through the same respawn
        path, keyed per attempt so a retry genuinely recovers.
        """
        deadline = (
            None
            if self.flush_timeout is None
            else time.monotonic() + self.flush_timeout
        )
        key = tuple(int(k) for k in flush_key)
        attempt = 0
        while True:
            pool = self._ensure_pool(kind)
            futures = []
            try:
                if self.fault_plan is not None:
                    self.fault_plan.fire(
                        "pool_crash", key=(*key, attempt), site="pool.submit"
                    )
                futures = [pool.submit(fn, *args) for fn, args in jobs]
                if self.fault_plan is not None and self.fault_plan.should_fire(
                    "solver_timeout", key=(*key, attempt), site="pool.watchdog"
                ):
                    raise FutureTimeoutError(
                        f"injected solver_timeout fault (flush key {key})"
                    )
                keyed_results: list[tuple[int, AssignmentResult]] = []
                for future in futures:
                    if deadline is None:
                        keyed_results.extend(future.result())
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0.0:
                            raise FutureTimeoutError()
                        keyed_results.extend(future.result(timeout=remaining))
                return keyed_results
            except (BrokenProcessPool, InjectedFault) as exc:
                if isinstance(exc, InjectedFault) and exc.kind != "pool_crash":
                    raise
                attempt += 1
                if attempt > self.POOL_RESPAWN_ATTEMPTS:
                    raise
                self.tracer.event("pool.respawn")
                _discard_warm_pool(kind, self.max_workers)
                self._pool = None
                time.sleep(
                    min(
                        self.RESPAWN_BACKOFF_SECONDS * 2 ** (attempt - 1),
                        self.RESPAWN_BACKOFF_CAP,
                    )
                )
            except FutureTimeoutError as exc:
                # The pool may be wedged on the slow solve: cancel what
                # can be cancelled and discard it (threads that cannot
                # be interrupted finish detached).
                for future in futures:
                    future.cancel()
                _discard_warm_pool(kind, self.max_workers)
                self._pool = None
                self._pool_kind = None
                raise FlushTimeoutError(
                    f"pooled flush solve exceeded "
                    f"flush_timeout={self.flush_timeout}s "
                    f"(kind={kind}, groups={len(jobs)})"
                ) from exc

    # -- shared-memory staging ---------------------------------------------

    def _stage_shm(
        self, instance: ProblemInstance, groups: list[list[ShardComponent]]
    ):
        """Stage the flush into the shm arena; returns (handle, metas).

        One segment write per flush: the parent's CSR planes verbatim
        (including the derived prefix, so workers skip the recompute),
        numeric task/worker record planes (one single-pass extraction
        over the records, amortised across every component), and the
        concatenated component index arrays.  ``metas[g]`` holds one
        ``(key, t_off, t_len, w_off, w_len)`` row per component of group
        ``g`` — the only per-submit pickle besides the solver itself.
        Python record objects never ride the pool boundary: pickling a
        few hundred dataclass records costs more than every numeric
        plane combined.
        """
        if self._arena is None:
            self._arena = ShmArena(fault_plan=self.fault_plan)
        tasks = instance.tasks
        workers = instance.workers
        planes = dict(instance.pairs.planes())
        planes["rec_task_id"] = np.fromiter(
            (t.id for t in tasks), dtype=np.int64, count=len(tasks)
        )
        planes["rec_task_num"] = np.asarray(
            [
                (t.location.x, t.location.y, t.value, t.release_time)
                for t in tasks
            ],
            dtype=np.float64,
        ).reshape(len(tasks), 4)
        planes["rec_worker_id"] = np.fromiter(
            (w.id for w in workers), dtype=np.int64, count=len(workers)
        )
        planes["rec_worker_num"] = np.asarray(
            [(w.location.x, w.location.y, w.radius) for w in workers],
            dtype=np.float64,
        ).reshape(len(workers), 3)
        t_chunks: list[np.ndarray] = []
        w_chunks: list[np.ndarray] = []
        metas: list[tuple[tuple[int, int, int, int, int], ...]] = []
        t_off = w_off = 0
        for group in groups:
            meta = []
            for component in group:
                t_idx = np.asarray(component.tasks, dtype=np.int64)
                w_idx = np.asarray(component.workers, dtype=np.int64)
                meta.append((component.key, t_off, len(t_idx), w_off, len(w_idx)))
                t_chunks.append(t_idx)
                w_chunks.append(w_idx)
                t_off += len(t_idx)
                w_off += len(w_idx)
            metas.append(tuple(meta))
        planes["comp_task_idx"] = (
            np.concatenate(t_chunks) if t_chunks else np.zeros(0, dtype=np.int64)
        )
        planes["comp_worker_idx"] = (
            np.concatenate(w_chunks) if w_chunks else np.zeros(0, dtype=np.int64)
        )
        handle = self._arena.stage(planes)
        self.tracer.event("shard.shm_stage")
        return handle, metas
