"""Event-driven dispatch simulation over a continuous timeline.

:class:`DispatchSimulator` advances a clock through a merged arrival
stream and three kinds of internal timers:

* **task arrival** — the task enters the micro-batch buffer; a flush
  timer is armed ``max_wait`` ahead;
* **worker arrival / rejoin** — the worker (re)joins the idle pool;
* **flush** — if the buffer is full or its oldest task is overdue, the
  pending tasks and the idle, non-retired workers become one
  budget-capped :class:`ProblemInstance`, the configured solver runs on
  it, and winners go on a service leg.

Duty cycles: a worker who wins task ``t_i`` travels ``d_ij`` at
``config.speed`` plus ``config.min_service`` overhead, is busy for that
duration, then rejoins the idle pool *at the task's location* — fleet
geography drifts with demand, as in real dispatch.

Expiry is enforced at every flush: tasks whose deadline has passed are
removed *before* instance construction, so an expired task can never be
assigned.  Workers whose remaining shift budget is exhausted are retired
from private solve pools (their vectors would be empty anyway; retiring
them keeps instances small).
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.api.options import (
    validate_flush_timeout,
    validate_service,
    validate_sharding,
    validate_timeline_limit,
)
from repro.core.budgets import BudgetSampler
from repro.core.engine import ConflictEliminationSolver
from repro.core.utility import UtilityModel
from repro.core.workspace import EngineWorkspace, shm_available
from repro.datasets.workload import Worker
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.obs.tracer import NULL_TRACER, Tracer, aggregate_phases, stopwatch
from repro.privacy.horizon import HorizonPolicy, WindowAccountant
from repro.stream.batcher import (
    AdaptiveBatchController,
    MicroBatcher,
    WorkerBudgetTracker,
)
from repro.stream.cache import (
    FlushSolverCache,
    cache_profile,
    flush_inputs_fingerprint,
)
from repro.stream.events import (
    ActiveWorker,
    Assignment,
    OpenTask,
    StreamEvent,
    TaskArrival,
    WorkerArrival,
    WorkerDeparture,
)
from repro.stream.costmodel import FlushCostModel, FlushPlanner
from repro.stream.metrics import FlushRecord, StreamStats
from repro.stream.shards import ShardedFlushExecutor, ShardSeedSchedule
from repro.utils.rng import stable_hash

if TYPE_CHECKING:  # runtime import is deferred to break the package cycle
    from repro.core.registry import Solver

__all__ = ["StreamConfig", "DispatchSimulator"]

# Heap tie-break priorities: pool updates land before flush decisions at
# equal timestamps, so a flush sees every worker who is back by then.
# Departures slot between rejoins and tasks: a worker back *and gone* at
# the same instant never serves, and the pre-departure relative order of
# the original kinds is unchanged (existing streams replay bit-identically).
_PRIO_WORKER = 0
_PRIO_REJOIN = 1
_PRIO_DEPART = 2
_PRIO_TASK = 3
_PRIO_FLUSH = 4


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the online layer (micro-batching + duty cycles).

    Parameters
    ----------
    max_batch_size, max_wait:
        Flush triggers (see :class:`MicroBatcher`).
    speed:
        Worker travel speed in distance units per time unit; the service
        leg for a win at distance ``d`` lasts ``min_service + d / speed``.
    min_service:
        Fixed per-assignment service overhead (pickup, handover).
    relocate_workers:
        Whether a worker rejoins at the served task's location (default)
        or at their original position.
    budget_sampler, model:
        Per-flush instance parameters (Table X defaults when omitted).
    shards:
        ``"auto"`` (the default) plans every flush with the calibrated
        cost model (:mod:`repro.stream.costmodel`): the
        :class:`~repro.stream.costmodel.FlushPlanner` picks single-unit,
        sequential-sharded, or process-parallel execution — plus slot
        count and transport — per flush.  An int pins the execution
        slots instead: ``0``/``1`` force a single sequential unit,
        ``>= 2`` that many slots.  Every flush routes through the
        conflict-free shard cut (:mod:`repro.stream.shards`) with
        per-component noise seeding, so results are bit-identical across
        *all* settings of this knob (and of ``parallel``/transport): the
        cut, not the execution strategy, defines every noise stream.
    parallel:
        Shard execution: ``"off"`` (sequential, or planner's choice
        under ``shards="auto"``), ``"thread"``, or ``"process"``
        (requires ``shards >= 1`` or ``"auto"``).
    max_shard_workers:
        Pool size for parallel shard execution (default: ``shards``,
        or the host's core count under ``shards="auto"``).
    cost_model:
        Optional :class:`~repro.stream.costmodel.FlushCostModel`
        override for the planner and the adaptive controller (default:
        the baked-in calibration constants).
    adaptive:
        Enable the :class:`~repro.stream.batcher.AdaptiveBatchController`:
        ``max_batch_size`` becomes the initial flush limit and tracks
        observed flush service times thereafter.
    target_flush_seconds:
        The controller's per-flush solver-time target.
    adaptive_min_batch, adaptive_max_batch:
        Hard bounds on the adapted flush limit.
    cache:
        Enable the flush-fingerprint solver cache
        (:mod:`repro.stream.cache`): flushes whose fingerprint has been
        solved before reuse the stored result instead of running the
        solver.  Bit-identical to ``cache=False`` by construction.
    workspace:
        Reuse one :class:`~repro.core.workspace.EngineWorkspace` buffer
        arena across this stream's flush solves (conflict-elimination
        solvers only; pure performance, results unchanged).
    trace:
        Record a :class:`repro.obs.Tracer` span tree of every flush
        (cache / build / cut / solve / merge / commit phases plus engine
        round and cache/workspace point events); ``FlushRecord.
        phase_seconds`` and the ``--trace-out`` / ``profile`` CLI
        artifacts come from it.  Off by default: the no-op tracer keeps
        the hot path within noise of the un-instrumented one (the
        ``bench_obs_overhead`` gate).
    horizon:
        Optional :class:`~repro.privacy.horizon.HorizonPolicy`: budgets
        become per-window — spends age out and exhausted workers regain
        eligibility as the window slides (the infinite-horizon regime).
        ``None`` (the default) keeps the global fixed-budget accountant,
        bit-identical to every pre-horizon stream.
    timeline_limit:
        Cap on the stats timelines (privacy/window spend over time);
        past it, every other interior point is dropped.  ``None`` =
        unbounded (the historical behaviour).
    flush_timeout:
        Watchdog deadline (seconds) for pooled flush solves; past it the
        executor abandons the pool and degrades one ladder rung.
        ``None`` (the default) disables the watchdog.
    faults:
        Optional :class:`~repro.faults.FaultPlan`: deterministic fault
        injection threaded into the shard executor, the shm arena, and
        the simulator's own ``worker_departure`` hook.  ``None`` (the
        default) injects nothing.
    """

    max_batch_size: int = 200
    max_wait: float = 0.25
    speed: float = 20.0
    min_service: float = 0.05
    relocate_workers: bool = True
    budget_sampler: BudgetSampler | None = None
    model: UtilityModel | None = None
    shards: int | str = "auto"
    parallel: str = "off"
    max_shard_workers: int | None = None
    cost_model: FlushCostModel | None = None
    adaptive: bool = False
    target_flush_seconds: float = 0.02
    adaptive_min_batch: int = 8
    adaptive_max_batch: int = 2000
    cache: bool = False
    workspace: bool = True
    trace: bool = False
    horizon: HorizonPolicy | None = None
    timeline_limit: int | None = None
    flush_timeout: float | None = None
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        # One validation path: shared with SolveOptions (repro.api.options).
        validate_service(self.speed, self.min_service)
        validate_sharding(self.shards, self.parallel, self.max_shard_workers)
        validate_timeline_limit(self.timeline_limit)
        validate_flush_timeout(self.flush_timeout)
        if self.horizon is not None and not isinstance(self.horizon, HorizonPolicy):
            raise ConfigurationError(
                f"horizon must be a HorizonPolicy or None, "
                f"got {type(self.horizon).__name__}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ConfigurationError(
                f"faults must be a FaultPlan or None, "
                f"got {type(self.faults).__name__} "
                f"(resolve specs via FaultPlan.resolve)"
            )

    def service_duration(self, distance: float) -> float:
        """How long a worker is busy after winning at ``distance``."""
        return self.min_service + distance / self.speed


class DispatchSimulator:
    """Run one solver over one event stream; collect :class:`StreamStats`.

    Two driving modes share one loop:

    * **replay** — :meth:`run` consumes a whole pre-materialised timeline
      (the :class:`~repro.stream.runner.StreamRunner` path);
    * **incremental** — :meth:`push_event` / :meth:`advance` /
      :meth:`finalize` let a caller (the
      :class:`~repro.api.session.DispatchSession` facade) feed arrivals
      request-by-request and move the clock explicitly.

    :meth:`run` is literally push-all / advance-to-infinity / finalize,
    so the two modes are bit-identical on the same arrivals (the
    ``tests/properties/test_prop_session.py`` property).

    With ``record_assignments=True`` every dispatch decision is also
    appended to :attr:`assignment_log` as a typed
    :class:`~repro.stream.events.Assignment` event (the session's drain
    queue); replay runs leave it off to keep long streams lean.
    """

    def __init__(
        self,
        solver: "Solver",
        config: StreamConfig | None = None,
        seed: int = 0,
        record_assignments: bool = False,
        cache: FlushSolverCache | None = None,
    ):
        self.solver = solver
        self.config = config or StreamConfig()
        self.seed = seed
        # The accountant decides the budget regime: global (fixed shift
        # budgets, the bit-identical default) or sliding-window.
        self.tracker = WorkerBudgetTracker(
            accountant=WindowAccountant(self.config.horizon)
            if self.config.horizon is not None
            else None
        )
        cost_model = self.config.cost_model or FlushCostModel()
        controller = (
            AdaptiveBatchController(
                target_seconds=self.config.target_flush_seconds,
                min_size=self.config.adaptive_min_batch,
                max_size=self.config.adaptive_max_batch,
                cost_model=cost_model,
            )
            if self.config.adaptive
            else None
        )
        self.batcher = MicroBatcher(
            max_batch_size=self.config.max_batch_size,
            max_wait=self.config.max_wait,
            budget_sampler=self.config.budget_sampler,
            model=self.config.model,
            controller=controller,
        )
        #: The stream's span recorder (one timeline per run); the no-op
        #: singleton unless ``config.trace`` asked for real spans.
        self.tracer = Tracer() if self.config.trace else NULL_TRACER
        # One reusable buffer arena for the whole stream's flush solves;
        # only the conflict-elimination engines know how to borrow it.
        self._workspace = (
            EngineWorkspace(tracer=self.tracer)
            if self.config.workspace and isinstance(solver, ConflictEliminationSolver)
            else None
        )
        # Every flush routes through the sharded executor — the cut's
        # per-component noise seeding is the *one* noise schedule, so
        # shards=0, shards=N, and shards="auto" are result-identical and
        # differ only in execution strategy.
        if self.config.shards == "auto":
            cores = os.cpu_count() or 1
            width = self.config.max_shard_workers or cores
            self._shard_executor = ShardedFlushExecutor(
                solver,
                num_shards=1,
                parallel=self.config.parallel,
                max_workers=width,
                workspace=self._workspace,
                tracer=self.tracer,
                planner=FlushPlanner(
                    model=cost_model,
                    cores=cores,
                    parallel=self.config.parallel,
                    max_workers=width,
                    shm_ok=shm_available(),
                ),
                flush_timeout=self.config.flush_timeout,
                fault_plan=self.config.faults,
            )
        else:
            self._shard_executor = ShardedFlushExecutor(
                solver,
                num_shards=max(int(self.config.shards), 1),
                parallel=self.config.parallel,
                max_workers=self.config.max_shard_workers,
                workspace=self._workspace,
                tracer=self.tracer,
                flush_timeout=self.config.flush_timeout,
                fault_plan=self.config.faults,
            )
        # Flush-fingerprint solver cache: an injected instance wins (so
        # repeated runs can share one), else config.cache owns a fresh one.
        self._cache = (
            cache
            if cache is not None
            else (FlushSolverCache() if self.config.cache else None)
        )
        # The planned cut config is part of the cache key: the cut's
        # coalescing floor shapes every per-unit noise stream, so two
        # streams differing only in min_shard_pairs must never alias.
        # The plan's *execution* choice (mode/slots/transport) is
        # deliberately absent — results are invariant to it.
        self._cache_profile = (
            cache_profile(
                solver,
                shard_key=(
                    f"cut(min_pairs={self._shard_executor.min_shard_pairs})"
                ),
            )
            if self._cache is not None
            else None
        )
        # A content-sensitive fingerprint contains this stream's strictly
        # increasing flush index (via the noise/build keys), so inside one
        # private-method stream it can never repeat: with a cache nobody
        # else shares, every lookup would provably miss.  Skip the
        # fingerprint/store machinery outright in that case — it only
        # costs time and memory.  An *injected* (shared) cache keeps it:
        # repeated runs of the same scenario do recur.
        self._cache_active = self._cache is not None and (
            cache is not None or not self._cache_profile.content_sensitive
        )
        self._workers: dict[int, ActiveWorker] = {}
        self._flush_index = 0
        self.stats = StreamStats(
            method=solver.name, timeline_limit=self.config.timeline_limit
        )
        if self.tracer.enabled:
            # Alias, not copy: the stats expose the live span list, so
            # exporters read a finished run without a handoff step.
            self.stats.spans = self.tracer.spans
        self.record_assignments = record_assignments
        #: Typed dispatch decisions, in decision order (session drain queue).
        self.assignment_log: list[Assignment] = []
        self._counter = itertools.count()
        self._heap: list[tuple[float, int, int, object]] = []
        self._last_time = 0.0
        self._advanced_to = 0.0
        self._finalized = False

    # -- public API --------------------------------------------------------

    def run(self, events: Iterable[StreamEvent]) -> StreamStats:
        """Drive the solver through ``events``; return streaming stats."""
        try:
            for event in events:
                self.push_event(event)
            self.advance(math.inf)
            return self.finalize()
        finally:
            self.close()

    def push_event(self, event: StreamEvent) -> None:
        """Feed one arrival into the timeline (not yet processed).

        Arrivals may land at any time at or after the clock's high-water
        mark (:meth:`advance`); earlier ones would rewrite history.
        """
        if self._finalized:
            raise ConfigurationError("simulator already finalized")
        if isinstance(event, TaskArrival):
            priority = _PRIO_TASK
        elif isinstance(event, WorkerArrival):
            priority = _PRIO_WORKER
        elif isinstance(event, WorkerDeparture):
            priority = _PRIO_DEPART
        else:
            raise ConfigurationError(f"unknown stream event {event!r}")
        if event.time < self._advanced_to - 1e-12:
            raise ConfigurationError(
                f"event at {event.time} is in the past; clock already "
                f"advanced to {self._advanced_to}"
            )
        heapq.heappush(self._heap, (event.time, priority, next(self._counter), event))
        self._last_time = max(self._last_time, event.time)

    def advance(self, to_time: float) -> None:
        """Process every queued event and timer due at or before ``to_time``."""
        if self._finalized:
            raise ConfigurationError("simulator already finalized")
        heap = self._heap
        while heap and heap[0][0] <= to_time:
            now, priority, _, payload = heapq.heappop(heap)
            self._last_time = max(self._last_time, now)
            self._expire_pending(now)
            if priority == _PRIO_WORKER:
                self._on_worker(payload)
                # A returning fleet can unblock an overdue buffer.
                if self.batcher.should_flush(now):
                    self._flush(now)
            elif priority == _PRIO_REJOIN:
                self._on_rejoin(now, payload)
                if self.batcher.should_flush(now):
                    self._flush(now)
            elif priority == _PRIO_DEPART:
                self._on_departure(payload)
            elif priority == _PRIO_TASK:
                self._on_task(now, payload)
            elif priority == _PRIO_FLUSH:
                if self.batcher.should_flush(now):
                    self._flush(now)
        horizon = to_time if math.isfinite(to_time) else self._last_time
        # Expire up to the advanced clock even when no timer was due in
        # the window, so session introspection (stats.expired,
        # pending_tasks) never lags it.  Harmless on the replay path:
        # expiry is monotone and every flush re-checks it.
        self._expire_pending(horizon)
        self._advanced_to = max(self._advanced_to, horizon)

    def finalize(self) -> StreamStats:
        """Close the timeline and return the stats.

        Anything still pending either expired inside the horizon or is
        left unresolved (deadline beyond it).  Idempotent; also releases
        the shard executor.
        """
        if not self._finalized:
            self._finalized = True
            self._expire_pending(self._last_time)
            self._advanced_to = max(self._advanced_to, self._last_time)
            self.stats.leftover = len(self.batcher)
            self.stats.sim_duration = self._last_time
            self.close()
        return self.stats

    def close(self) -> None:
        """Release pooled resources and the buffer arena (idempotent)."""
        if self._shard_executor is not None:
            self._shard_executor.close()
        if self._workspace is not None:
            self._workspace.release()

    @property
    def clock(self) -> float:
        """The high-water mark the timeline has advanced to."""
        return self._advanced_to

    # -- event handlers ----------------------------------------------------

    def _arm_timer(self, due: float, priority: int, payload: object) -> None:
        heapq.heappush(self._heap, (due, priority, next(self._counter), payload))

    def _on_task(self, now, arrival: TaskArrival) -> None:
        self.stats.arrived_tasks += 1
        self.batcher.add(
            OpenTask(task=arrival.task, arrival_time=now, deadline=arrival.deadline)
        )
        if len(self.batcher) >= self.batcher.max_batch_size:
            self._flush(now)
        else:
            self._arm_timer(now + self.config.max_wait, _PRIO_FLUSH, None)

    def _on_worker(self, arrival: WorkerArrival) -> None:
        self.stats.arrived_workers += 1
        worker = arrival.worker
        if worker.id in self._workers:
            raise ConfigurationError(f"worker id {worker.id} arrived twice")
        self._workers[worker.id] = ActiveWorker(worker=worker)
        if arrival.budget_capacity != float("inf"):
            self.tracker.register(worker.id, arrival.budget_capacity)

    def _on_rejoin(self, now: float, worker_id: int) -> None:
        active = self._workers.get(worker_id)
        if active is not None and active.busy_until is not None:
            if active.busy_until <= now + 1e-12:
                active.busy_until = None

    def _on_departure(self, departure: WorkerDeparture) -> None:
        """Remove one worker from the fleet (idempotent; churn family).

        A busy worker keeps its in-flight assignment — the match was
        already committed and published — but never rejoins: removal
        here drops it from every future idle pool, and the pending
        rejoin timer tolerates the missing id.  An unknown or repeated
        id is a no-op (departures race arrivals in real fleets).
        """
        if self._workers.pop(departure.worker_id, None) is not None:
            self.stats.departed_workers += 1

    def _expire_pending(self, now: float) -> None:
        expired = self.batcher.expire(now)
        self.stats.expired += len(expired)

    # -- flushing ----------------------------------------------------------

    def _idle_workers(self) -> list[Worker]:
        """Idle, non-retired workers eligible for the next micro-batch.

        A worker whose whole shift budget is spent can never publish again
        under a private solver, so they are retired from the pool (for
        non-private solvers spend stays zero and nobody retires).  Under
        a windowed accountant retirement is per-flush, not permanent:
        ``exhausted`` recomputes against the window at the observed flush
        time, so a worker re-enters the pool once their old releases age
        out.
        """
        pool = []
        for active in self._workers.values():
            if not active.idle:
                continue
            if self.solver.is_private and self.tracker.exhausted(active.worker.id):
                continue
            pool.append(active.worker)
        pool.sort(key=lambda w: w.id)
        return pool

    def _flush(self, now: float) -> None:
        self._expire_pending(now)
        # Window accounting needs the flush time before any eligibility
        # check: releases older than `now - window` age out, which is how
        # a retired worker regains their budget (no-op for the global
        # accountant).
        self.tracker.observe(now)
        if not len(self.batcher):
            return
        workers = self._idle_workers()
        faults = self.config.faults
        if (
            faults is not None
            and workers
            and faults.should_fire(
                "worker_departure",
                key=(self.seed, self._flush_index),
                site="sim.flush",
            )
        ):
            # The one fault kind that legitimately changes results: a
            # deterministically chosen idle worker walks off mid-stream.
            # Excluded from the smoke plan for exactly that reason.
            pick = np.random.default_rng(
                (faults.seed, self.seed, self._flush_index)
            ).integers(len(workers))
            victim = workers[int(pick)]
            self._on_departure(WorkerDeparture(time=now, worker_id=victim.id))
            self.tracer.event("fault.worker_departure")
            workers = [w for w in workers if w.id != victim.id]
        if not workers:
            # Tasks wait for the fleet; arm a sweep at the next deadline so
            # expiry is recorded even if no other event advances the clock.
            next_deadline = min(t.deadline for t in self.batcher.pending)
            self._arm_timer(next_deadline + 1e-9, _PRIO_FLUSH, None)
            return
        batch_limit = self.batcher.max_batch_size
        open_tasks = self.batcher.take_batch()
        build_key = (self.seed, self._flush_index, 0x5EED)
        noise_key = (self.seed, self._flush_index, stable_hash(self.solver.name))
        fingerprint = None
        cache_hit = None
        hit = None
        tracer = self.tracer
        mark = tracer.mark()
        flush_watch = stopwatch()
        with flush_watch, tracer.span("flush"):
            if self._cache_active:
                # The zero-rebuild path: fingerprint the flush *inputs*
                # before any instance exists, so a hit skips construction
                # and solve alike.  Budget carry is part of the key: two
                # flushes may share every input yet differ in the workers'
                # remaining shift budgets, and those must never alias (see
                # repro.stream.cache).
                with tracer.span("flush.cache"):
                    remaining = (
                        tuple(self.tracker.remaining(w.id) for w in workers)
                        if self._cache_profile.content_sensitive
                        else None
                    )
                    fingerprint = flush_inputs_fingerprint(
                        [t.task for t in open_tasks],
                        workers,
                        self.batcher.model,
                        self.batcher.budget_sampler,
                        self._cache_profile,
                        build_key=build_key,
                        noise_key=noise_key,
                        remaining_budgets=remaining,
                    )
                    hit = self._cache.lookup(fingerprint)
                    cache_hit = hit is not None
                    tracer.event("cache.hit" if cache_hit else "cache.miss")
            plan = None
            if hit is not None:
                with stopwatch() as solve_watch:
                    result, shards = hit
                # The cached result's instance shares the flush's
                # fingerprint, so its pair count is the flush's own.
                pairs_count = result.instance.num_feasible_pairs
            else:
                # Instance construction stays outside the solve window:
                # ``solver_seconds`` has always measured solve work only
                # (it drives the adaptive controller and the throughput
                # metric).
                with tracer.span("flush.build"):
                    instance = self.batcher.build_instance(
                        open_tasks,
                        workers,
                        # The cap binds only methods that publish;
                        # non-private baselines never spend, and capping
                        # them would misprice the comparison.
                        tracker=self.tracker if self.solver.is_private else None,
                        seed=np.random.default_rng(build_key),
                    )
                pairs_count = instance.num_feasible_pairs
                with stopwatch() as solve_watch:
                    # The executor records its own flush.cut / plan /
                    # build / solve / merge phases at this depth.
                    result, cut, plan = self._shard_executor.solve_planned(
                        instance, ShardSeedSchedule(noise_key)
                    )
                    shards = max(cut.num_components, 1)
            solver_seconds = solve_watch.seconds
            if fingerprint is not None and hit is None:
                with tracer.span("flush.cache"):
                    self._cache.store(fingerprint, result, shards)
                    tracer.event("cache.store")

            with tracer.span("flush.commit"):
                self.batcher.observe_flush(
                    solver_seconds, len(open_tasks), pairs=pairs_count
                )
                self.tracker.charge(result.ledger)
                window_spend = None
                if self.tracker.windowed:
                    # The live window invariant: no worker's in-window
                    # spend may exceed their per-window cap.  charge()
                    # audits the flush's own publishers; this re-checks
                    # the whole pool so the stats carry the proof.
                    window_spend = self.tracker.accountant.total_in_window()
                    if any(
                        self.tracker.remaining(w.id) < -1e-9 for w in workers
                    ):
                        self.stats.window_invariant_ok = False

                by_id = {t.task.id: t for t in open_tasks}
                unassigned = dict(by_id)
                for pair in result.matched_pairs():
                    open_task = by_id[pair.task_id]
                    del unassigned[pair.task_id]
                    self.stats.assigned += 1
                    self.stats.record_latency(now - open_task.arrival_time)
                    self.stats.total_utility += pair.utility
                    self.stats.total_distance += pair.distance
                    if self.record_assignments:
                        self.assignment_log.append(
                            Assignment(
                                time=now,
                                flush_index=self._flush_index,
                                task_id=pair.task_id,
                                worker_id=pair.worker_id,
                                distance=pair.distance,
                                utility=pair.utility,
                                latency=now - open_task.arrival_time,
                                method=self.solver.name,
                            )
                        )
                    self._start_service(now, pair.worker_id, open_task, pair.distance)
                # Losers return to the buffer and wait for the next flush.
                self.batcher.restore(list(unassigned.values()), now)
                if unassigned:
                    self._arm_timer(now + self.config.max_wait, _PRIO_FLUSH, None)
                for worker_id in (w.id for w in workers):
                    spend = self.tracker.spent(worker_id)
                    if spend:
                        self.stats.per_worker_spend[worker_id] = spend

        # The flush span is closed: derive the record's timing fields from
        # it (every elapsed_seconds-style field is trace- or stopwatch-
        # derived now; no ad-hoc perf_counter pairs remain on this path).
        phase_seconds = (
            aggregate_phases(tracer.since(mark)) if tracer.enabled else None
        )
        self.stats.update(
            FlushRecord(
                index=self._flush_index,
                time=now,
                pending_tasks=len(open_tasks),
                idle_workers=len(workers),
                matched=result.matched_count,
                solver_seconds=solver_seconds,
                cumulative_privacy_spend=self.tracker.total_spend(),
                shards=shards,
                batch_limit=batch_limit,
                cache_hit=cache_hit,
                flush_seconds=flush_watch.seconds,
                phase_seconds=phase_seconds,
                pairs=pairs_count,
                planned_mode=plan.label if plan is not None else "cache",
                predicted_seconds=(
                    plan.predicted_seconds if plan is not None else 0.0
                ),
                window_spend=window_spend,
                degraded=(
                    self._shard_executor.last_degraded
                    if plan is not None
                    else None
                ),
            )
        )
        self._flush_index += 1

    def _start_service(
        self, now: float, worker_id: int, open_task: OpenTask, distance: float
    ) -> None:
        active = self._workers[worker_id]
        rejoin_at = now + self.config.service_duration(distance)
        active.busy_until = rejoin_at
        if self.config.relocate_workers:
            active.worker = Worker(
                id=active.worker.id,
                location=open_task.task.location,
                radius=active.worker.radius,
            )
        self._arm_timer(rejoin_at, _PRIO_REJOIN, worker_id)
