"""Streaming experiment runner: several methods over one event timeline.

The online counterpart of :class:`~repro.simulation.runner.BatchRunner`:
every method replays the *same* materialised arrival stream through its
own :class:`~repro.stream.simulator.DispatchSimulator` (noise streams are
derived per (method, flush) from one base seed, so a whole streaming
experiment reproduces end to end), and the per-method
:class:`~repro.stream.metrics.StreamStats` are collected into a
:class:`StreamReport`.

Because assignment decisions feed back into the simulation (winners go
busy, budgets deplete, fleets drift), methods diverge *after* the shared
arrivals — that divergence is exactly what the streaming measures
quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.stream.arrivals import StreamWorkload
from repro.stream.events import StreamEvent
from repro.stream.metrics import StreamStats
from repro.stream.simulator import StreamConfig

if TYPE_CHECKING:  # runtime import is deferred to break the package cycle
    from repro.core.registry import Solver

__all__ = ["StreamRunner", "StreamReport"]


@dataclass
class StreamReport:
    """Per-method streaming stats for one shared event timeline."""

    stats: dict[str, StreamStats] = field(default_factory=dict)

    def methods(self) -> tuple[str, ...]:
        return tuple(self.stats)

    def __getitem__(self, method: str) -> StreamStats:
        try:
            return self.stats[method]
        except KeyError:
            raise ConfigurationError(
                f"method {method!r} not in report; have {sorted(self.stats)}"
            ) from None


class StreamRunner:
    """Run several methods over the same event stream and aggregate.

    Parameters
    ----------
    methods:
        Method names (Table IX), method-spec strings
        (``"PDCE(ppcf=off)"``), or ready solver objects.
    config:
        Online-layer knobs shared by every method.  Mutually exclusive
        with ``options``.
    options:
        The unified :class:`~repro.api.options.SolveOptions`: configures
        both solver construction (for named methods) and the online layer.
    """

    def __init__(
        self,
        methods: Sequence["str | Solver"],
        config: StreamConfig | None = None,
        options=None,
    ):
        from repro.core.registry import make_solver

        if not methods:
            raise ConfigurationError("need at least one method")
        if config is not None and options is not None:
            raise ConfigurationError(
                "pass either config or options, not both (options already "
                "describe a StreamConfig)"
            )
        self.solvers: list["Solver"] = [
            make_solver(m, options) if isinstance(m, str) else m for m in methods
        ]
        names = [s.name for s in self.solvers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate method names in {names}")
        if options is not None:
            self.config = options.stream_config()
        else:
            self.config = config or StreamConfig()

    def run(self, events: Sequence[StreamEvent], seed: int = 0) -> StreamReport:
        """Replay ``events`` through every method; return the aggregate.

        The replay is a thin loop over the service facade: each method
        gets a :class:`~repro.api.session.DispatchSession` fed the shared
        timeline (bit-identical to driving the simulator directly).
        """
        from repro.api.session import DispatchSession, SessionConfig

        events = list(events)
        report = StreamReport()
        for solver in self.solvers:
            session = DispatchSession(
                solver,
                SessionConfig(
                    stream=self.config, seed=seed, record_assignments=False
                ),
            )
            report.stats[solver.name] = session.run(events)
        return report

    def run_workload(self, workload: StreamWorkload, seed: int = 0) -> StreamReport:
        """Materialise ``workload``'s timeline once and replay it."""
        return self.run(workload.events(seed=seed), seed=seed)
