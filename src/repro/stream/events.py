"""Timestamped stream events and in-flight dispatch state.

The online layer replaces the Section VII-B fixed-batch protocol with a
continuous timeline: tasks and workers *arrive* at real-valued times,
tasks carry a deadline after which they expire unserved, and workers go
on duty cycles (busy while travelling to a won task, idle again after).

Two event kinds cross the boundary between arrival generation
(:mod:`repro.stream.arrivals`) and simulation
(:mod:`repro.stream.simulator`):

* :class:`TaskArrival` — a task released at ``time`` that must be
  assigned before ``deadline``;
* :class:`WorkerArrival` — a worker coming on duty at ``time`` with a
  total privacy-budget capacity for their whole shift.

:class:`OpenTask` and :class:`ActiveWorker` are the simulator's mutable
views of the same records while they are live.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.workload import Task, Worker
from repro.errors import ConfigurationError

__all__ = [
    "TaskArrival",
    "WorkerArrival",
    "WorkerDeparture",
    "StreamEvent",
    "Assignment",
    "OpenTask",
    "ActiveWorker",
    "merge_events",
]


@dataclass(frozen=True, slots=True)
class TaskArrival:
    """A task released into the stream at ``time``.

    ``deadline`` is absolute (same clock as ``time``); a task still
    unassigned when the clock passes it expires and may never be matched.
    """

    time: float
    task: Task
    deadline: float

    def __post_init__(self) -> None:
        if self.deadline <= self.time:
            raise ConfigurationError(
                f"task {self.task.id}: deadline {self.deadline} must be after "
                f"arrival {self.time}"
            )


@dataclass(frozen=True, slots=True)
class WorkerArrival:
    """A worker coming on duty at ``time``.

    ``budget_capacity`` caps the worker's *cumulative* published privacy
    budget across every micro-batch of their shift (``inf`` = unlimited).
    """

    time: float
    worker: Worker
    budget_capacity: float = float("inf")

    def __post_init__(self) -> None:
        if self.budget_capacity <= 0:
            raise ConfigurationError(
                f"worker {self.worker.id}: budget capacity must be positive, "
                f"got {self.budget_capacity}"
            )


@dataclass(frozen=True, slots=True)
class WorkerDeparture:
    """Worker ``worker_id`` leaves the fleet at ``time`` (churn).

    Mid-stream removal, the ROADMAP's worker-churn workload family: an
    *idle* departing worker is removed immediately and takes no further
    part in any flush; a *busy* one keeps its in-flight assignment (the
    task was already committed and published) and simply never rejoins.
    A departure for a worker the simulator does not know (never arrived,
    or already departed) is a no-op — departures race arrivals in real
    fleets, and dropping the stale event is the only replayable answer.
    """

    time: float
    worker_id: int

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ConfigurationError(
                f"worker {self.worker_id}: departure time must be >= 0, "
                f"got {self.time}"
            )


StreamEvent = TaskArrival | WorkerArrival | WorkerDeparture


@dataclass(frozen=True, slots=True)
class Assignment:
    """One dispatch decision: ``task_id`` went to ``worker_id`` at ``time``.

    The typed outbound event of the service API
    (:meth:`repro.api.session.DispatchSession.drain`): ``latency`` is
    clock time from the task's release to the assigning flush,
    ``distance`` / ``utility`` are the matched pair's true-distance
    measures, and ``flush_index`` names the micro-batch that decided it.
    """

    time: float
    flush_index: int
    task_id: int
    worker_id: int
    distance: float
    utility: float
    latency: float
    method: str


@dataclass(slots=True)
class OpenTask:
    """A pending (released, not yet assigned or expired) task.

    ``buffer_since`` is the wait-trigger clock: it starts at arrival and
    restarts each time the task loses a micro-batch and returns to the
    buffer, so an unlucky task paces re-flushes at ``max_wait`` instead of
    forcing one on every subsequent event.  Latency is always measured
    from ``arrival_time``.
    """

    task: Task
    arrival_time: float
    deadline: float
    buffer_since: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.buffer_since < 0.0:
            self.buffer_since = self.arrival_time

    def expired(self, now: float) -> bool:
        return now > self.deadline


@dataclass(slots=True)
class ActiveWorker:
    """A worker currently on duty.

    ``worker`` drifts over the shift: after serving a task the record is
    replaced with one at that task's location.  ``busy_until`` is ``None``
    while idle.  Budget capacity lives in the
    :class:`~repro.stream.batcher.WorkerBudgetTracker`, not here.
    """

    worker: Worker
    busy_until: float | None = field(default=None)

    @property
    def idle(self) -> bool:
        return self.busy_until is None


def merge_events(*streams: "list[StreamEvent]") -> list[StreamEvent]:
    """Merge event lists into one timeline, stably ordered by time.

    Ties are broken by stream order then position, so a merged timeline is
    deterministic for deterministic inputs.
    """
    tagged = [
        (event.time, stream_index, position, event)
        for stream_index, stream in enumerate(streams)
        for position, event in enumerate(stream)
    ]
    tagged.sort(key=lambda entry: entry[:3])
    return [entry[3] for entry in tagged]
