"""Arrival processes: when tasks and workers enter the stream.

Four generators of arrival *times* over a finite horizon, covering the
regimes a dispatch platform actually sees:

* :class:`PoissonProcess` — homogeneous rate (the null model);
* :class:`RushHourProcess` — time-varying rate with Gaussian demand
  peaks (the chengdu double rush hour), sampled by Lewis-Shedler
  thinning;
* :class:`BurstyProcess` — compound Poisson: burst epochs each releasing
  a geometric number of near-simultaneous arrivals (event surges);
* :class:`TraceProcess` — replay of explicit timestamps, e.g. the
  release times of a :class:`~repro.datasets.chengdu.ChengduLikeGenerator`
  day via :meth:`TraceProcess.from_chengdu`.

:class:`StreamWorkload` pairs a task process and a worker process with a
spatial generator (locations) and materialises the timeline of
:class:`~repro.stream.events.TaskArrival` / ``WorkerArrival`` events that
the simulator consumes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.datasets.chengdu import ChengduLikeGenerator
from repro.datasets.synthetic import SyntheticGenerator
from repro.datasets.workload import Task, Worker
from repro.errors import ConfigurationError, DatasetError
from repro.spatial.geometry import Point
from repro.stream.events import (
    StreamEvent,
    TaskArrival,
    WorkerArrival,
    WorkerDeparture,
    merge_events,
)
from repro.utils.rng import ensure_rng, spawn_rng

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "RushHourProcess",
    "BurstyProcess",
    "TraceProcess",
    "StreamWorkload",
]


class ArrivalProcess(ABC):
    """A point process on ``[0, horizon)`` emitting arrival times."""

    def __init__(self, horizon: float):
        if not horizon > 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        self.horizon = float(horizon)

    @abstractmethod
    def times(self, rng: np.random.Generator) -> np.ndarray:
        """Sorted arrival times in ``[0, horizon)``."""

    def expected_count(self) -> float:
        """Expected number of arrivals over the horizon (for sizing)."""
        raise NotImplementedError  # pragma: no cover - optional metadata


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` per unit time."""

    def __init__(self, rate: float, horizon: float):
        super().__init__(horizon)
        if not rate >= 0:
            raise ConfigurationError(f"rate must be >= 0, got {rate}")
        self.rate = float(rate)

    def times(self, rng: np.random.Generator) -> np.ndarray:
        if self.rate == 0.0:
            return np.empty(0)
        count = rng.poisson(self.rate * self.horizon)
        return np.sort(rng.uniform(0.0, self.horizon, size=count))

    def expected_count(self) -> float:
        return self.rate * self.horizon


class RushHourProcess(ArrivalProcess):
    """Inhomogeneous Poisson arrivals with Gaussian demand peaks.

    The rate function is ``base_rate + peak_rate * sum_p exp(-(t - p)^2 /
    (2 width^2))`` — the double-rush-hour shape of the chengdu release
    profile.  Sampling is exact via thinning against the rate envelope.
    """

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        horizon: float,
        peaks: tuple[float, ...] = (8.5, 18.0),
        width: float = 1.5,
    ):
        super().__init__(horizon)
        if not base_rate >= 0 or not peak_rate >= 0:
            raise ConfigurationError("rates must be >= 0")
        if base_rate + peak_rate == 0:
            raise ConfigurationError("need base_rate + peak_rate > 0")
        if not peaks:
            raise ConfigurationError("need at least one peak")
        if not width > 0:
            raise ConfigurationError(f"width must be positive, got {width}")
        self.base_rate = float(base_rate)
        self.peak_rate = float(peak_rate)
        self.peaks = tuple(float(p) for p in peaks)
        self.width = float(width)

    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate at time ``t``."""
        bumps = sum(
            math.exp(-((t - p) ** 2) / (2.0 * self.width**2)) for p in self.peaks
        )
        return self.base_rate + self.peak_rate * bumps

    def times(self, rng: np.random.Generator) -> np.ndarray:
        # Envelope: every peak contributes at most peak_rate at its apex.
        ceiling = self.base_rate + self.peak_rate * len(self.peaks)
        count = rng.poisson(ceiling * self.horizon)
        candidates = np.sort(rng.uniform(0.0, self.horizon, size=count))
        keep = rng.uniform(0.0, ceiling, size=count)
        accepted = [
            t for t, u in zip(candidates, keep) if u <= self.rate_at(float(t))
        ]
        return np.asarray(accepted)

    def expected_count(self) -> float:
        # Integral of the rate function, each bump truncated to the horizon.
        total = self.base_rate * self.horizon
        for p in self.peaks:
            mass = self.peak_rate * self.width * math.sqrt(2.0 * math.pi)
            total += mass * _gaussian_overlap(p, self.width, self.horizon)
        return total


def _gaussian_overlap(peak: float, width: float, horizon: float) -> float:
    """Fraction of a Gaussian bump's mass falling inside ``[0, horizon]``."""
    lo = 0.5 * (1.0 + math.erf((0.0 - peak) / (width * math.sqrt(2.0))))
    hi = 0.5 * (1.0 + math.erf((horizon - peak) / (width * math.sqrt(2.0))))
    return hi - lo


class BurstyProcess(ArrivalProcess):
    """Compound Poisson bursts: surge epochs releasing clustered arrivals.

    Burst epochs follow a Poisson process at ``burst_rate``; each epoch
    releases ``1 + Geometric`` arrivals (mean ``mean_burst_size``) spread
    uniformly over ``burst_span`` time units after the epoch.
    """

    def __init__(
        self,
        burst_rate: float,
        mean_burst_size: float,
        horizon: float,
        burst_span: float = 0.05,
    ):
        super().__init__(horizon)
        if not burst_rate >= 0:
            raise ConfigurationError(f"burst_rate must be >= 0, got {burst_rate}")
        if not mean_burst_size >= 1:
            raise ConfigurationError(
                f"mean_burst_size must be >= 1, got {mean_burst_size}"
            )
        if not burst_span >= 0:
            raise ConfigurationError(f"burst_span must be >= 0, got {burst_span}")
        self.burst_rate = float(burst_rate)
        self.mean_burst_size = float(mean_burst_size)
        self.burst_span = float(burst_span)

    def times(self, rng: np.random.Generator) -> np.ndarray:
        if self.burst_rate == 0.0:
            return np.empty(0)
        epochs = rng.poisson(self.burst_rate * self.horizon)
        starts = rng.uniform(0.0, self.horizon, size=epochs)
        all_times: list[float] = []
        for start in starts:
            if self.mean_burst_size > 1.0:
                extra = rng.geometric(1.0 / self.mean_burst_size) - 1
            else:
                extra = 0
            size = 1 + int(extra)
            offsets = rng.uniform(0.0, self.burst_span, size=size)
            for offset in offsets:
                t = float(start + offset)
                if t < self.horizon:
                    all_times.append(t)
        return np.sort(np.asarray(all_times))

    def expected_count(self) -> float:
        return self.burst_rate * self.horizon * self.mean_burst_size


class TraceProcess(ArrivalProcess):
    """Replay of explicit arrival timestamps (trace-driven workloads)."""

    def __init__(self, trace: "np.ndarray | list[float]", horizon: float | None = None):
        trace_arr = np.sort(np.asarray(trace, dtype=float))
        if trace_arr.size and trace_arr[0] < 0:
            raise ConfigurationError("trace times must be non-negative")
        inferred = float(trace_arr[-1]) + 1e-9 if trace_arr.size else 1.0
        super().__init__(horizon if horizon is not None else max(inferred, 1e-9))
        self.trace = trace_arr[trace_arr < self.horizon]

    def times(self, rng: np.random.Generator) -> np.ndarray:  # noqa: ARG002
        return self.trace.copy()

    def expected_count(self) -> float:
        return float(self.trace.size)

    @classmethod
    def from_chengdu(
        cls,
        generator: ChengduLikeGenerator,
        seed: int | np.random.Generator | None = 0,
        task_value: float = 4.5,
        horizon: float | None = None,
    ) -> "TraceProcess":
        """Replay a chengdu-like day: release times in hours of day.

        Draws one day of ``generator.num_tasks`` orders and replays their
        rush-hour release times.  ``horizon`` (default the full 24 hours)
        clips the replay: orders released after it are dropped.
        """
        rng = ensure_rng(seed)
        tasks = generator.tasks(task_value, rng)
        clip = 24.0 if horizon is None else min(float(horizon), 24.0)
        return cls([t.release_time for t in tasks], horizon=clip)


@dataclass
class StreamWorkload:
    """A full streaming scenario: arrival timing plus spatial law.

    Parameters
    ----------
    task_process, worker_process:
        When tasks / reinforcement workers arrive.
    spatial:
        Location law for both populations (any dataset generator).
    initial_workers:
        Workers already on duty at ``t = 0`` (the starting fleet).
    task_value, value_jitter:
        Task values (Table X default 4.5).
    worker_range:
        Service radius ``r_j`` of every worker (Table X default 1.4).
    task_deadline:
        Patience: a task arriving at ``t`` expires at ``t + task_deadline``.
    worker_budget:
        Per-worker cumulative privacy-budget capacity for the whole shift.
    departures:
        Worker-churn probability: each worker (initial fleet included)
        independently leaves mid-stream with this probability, at a
        uniform time between their arrival and the horizon
        (:class:`~repro.stream.events.WorkerDeparture` events).  The
        default 0.0 emits no departures and reproduces every pre-churn
        timeline bit-identically.
    seed:
        Base seed for arrival draws and locations.
    """

    task_process: ArrivalProcess
    worker_process: ArrivalProcess
    spatial: SyntheticGenerator
    initial_workers: int = 20
    task_value: float = 4.5
    value_jitter: float = 0.0
    worker_range: float = 1.4
    task_deadline: float = 1.0
    worker_budget: float = float("inf")
    departures: float = 0.0
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.initial_workers < 0:
            raise ConfigurationError(
                f"initial_workers must be >= 0, got {self.initial_workers}"
            )
        if not self.task_deadline > 0:
            raise ConfigurationError(
                f"task_deadline must be positive, got {self.task_deadline}"
            )
        if self.worker_range < 0:
            raise DatasetError(
                f"worker_range must be >= 0, got {self.worker_range}"
            )
        if not self.worker_budget > 0:
            raise ConfigurationError(
                f"worker_budget must be positive, got {self.worker_budget}"
            )
        if not 0.0 <= self.departures <= 1.0:
            raise ConfigurationError(
                f"departures must be in [0, 1], got {self.departures}"
            )

    @property
    def horizon(self) -> float:
        return max(self.task_process.horizon, self.worker_process.horizon)

    def events(self, seed: int | np.random.Generator | None = None) -> list[StreamEvent]:
        """Materialise the merged, time-ordered event timeline.

        ``seed`` overrides the workload's base seed, so one workload object
        can emit independent reproducible days.
        """
        rng = ensure_rng(self.seed if seed is None else seed)
        timing_rng, task_rng, worker_rng, value_rng = (
            spawn_rng(rng) for _ in range(4)
        )

        task_times = self.task_process.times(timing_rng)
        worker_times = self.worker_process.times(timing_rng)

        task_points = self.spatial.sample_task_locations(task_rng, len(task_times))
        if self.value_jitter:
            values = np.maximum(
                value_rng.uniform(
                    self.task_value - self.value_jitter,
                    self.task_value + self.value_jitter,
                    size=len(task_times),
                ),
                0.0,
            )
        else:
            values = np.full(len(task_times), self.task_value)
        task_events: list[StreamEvent] = [
            TaskArrival(
                time=float(t),
                task=Task(
                    id=i,
                    location=Point(float(x), float(y)),
                    value=float(v),
                    release_time=float(t),
                ),
                deadline=float(t) + self.task_deadline,
            )
            for i, (t, (x, y), v) in enumerate(zip(task_times, task_points, values))
        ]

        total_workers = self.initial_workers + len(worker_times)
        worker_points = self.spatial.sample_worker_locations(worker_rng, total_workers)
        all_worker_times = np.concatenate(
            [np.zeros(self.initial_workers), worker_times]
        )
        worker_events: list[StreamEvent] = [
            WorkerArrival(
                time=float(t),
                worker=Worker(
                    id=j, location=Point(float(x), float(y)), radius=self.worker_range
                ),
                budget_capacity=self.worker_budget,
            )
            for j, (t, (x, y)) in enumerate(zip(all_worker_times, worker_points))
        ]

        # Churn: the departures RNG is spawned *after* the original four,
        # so every departures=0.0 workload replays its historical
        # timeline bit-for-bit.
        departure_events: list[StreamEvent] = []
        if self.departures > 0.0:
            departures_rng = spawn_rng(rng)
            horizon = self.horizon
            leaves = departures_rng.random(total_workers) < self.departures
            offsets = departures_rng.random(total_workers)
            for j, arrived in enumerate(all_worker_times):
                arrived = float(arrived)
                if leaves[j] and horizon > arrived:
                    departure_events.append(
                        WorkerDeparture(
                            time=arrived + float(offsets[j]) * (horizon - arrived),
                            worker_id=j,
                        )
                    )
        return merge_events(task_events, worker_events, departure_events)
