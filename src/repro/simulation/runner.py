"""Batch experiment runner.

Runs a set of methods over a sequence of batch instances (the Section
VII-B protocol) and aggregates the Section VII-C measures.  All methods
see the *same* instances; noise streams are derived per (method, batch)
from one base seed so a whole experiment is reproducible end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.simulation.instance import ProblemInstance
from repro.simulation.metrics import (
    MethodStats,
    relative_distance_deviation,
    relative_utility_deviation,
)
from repro.utils.rng import stable_hash

if TYPE_CHECKING:  # runtime import is deferred to break the package cycle
    from repro.core.registry import Solver

__all__ = ["BatchRunner", "RunReport"]


@dataclass
class RunReport:
    """Aggregated outcome of one multi-method, multi-batch run."""

    stats: dict[str, MethodStats] = field(default_factory=dict)

    def methods(self) -> tuple[str, ...]:
        return tuple(self.stats)

    def __getitem__(self, method: str) -> MethodStats:
        try:
            return self.stats[method]
        except KeyError:
            raise ConfigurationError(
                f"method {method!r} not in report; have {sorted(self.stats)}"
            ) from None

    def utility_deviation(self, method: str) -> float:
        """``U_RD`` of a private method vs its non-private counterpart.

        Requires the counterpart to be part of the same run.
        """
        counterpart = self._counterpart(method)
        return relative_utility_deviation(self[counterpart], self[method])

    def distance_deviation(self, method: str) -> float:
        """``D_RD`` of a private method vs its non-private counterpart."""
        counterpart = self._counterpart(method)
        return relative_distance_deviation(self[counterpart], self[method])

    def _counterpart(self, method: str) -> str:
        from repro.core.registry import NON_PRIVATE_COUNTERPART

        if method not in NON_PRIVATE_COUNTERPART:
            raise ConfigurationError(
                f"{method!r} has no non-private counterpart (is it private?)"
            )
        return NON_PRIVATE_COUNTERPART[method]


class BatchRunner:
    """Run several methods over the same batches and aggregate.

    Parameters
    ----------
    methods:
        Method names (Table IX), method-spec strings
        (``"PDCE(ppcf=off)"``), or ready solver objects.
    options:
        Optional :class:`~repro.api.options.SolveOptions` applied to
        named-method construction and used as the default run seed.
    """

    def __init__(self, methods: Sequence["str | Solver"], options=None):
        from repro.core.registry import make_solver

        if not methods:
            raise ConfigurationError("need at least one method")
        self.options = options
        self.solvers: list["Solver"] = [
            make_solver(m, options) if isinstance(m, str) else m for m in methods
        ]
        names = [s.name for s in self.solvers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate method names in {names}")

    def run(
        self, instances: Iterable[ProblemInstance], seed: int | None = None
    ) -> RunReport:
        """Solve every instance with every method; return the aggregate.

        ``seed`` defaults to ``options.seed`` (0 without options) — the
        facade's uniform convention.
        """
        # Runtime imports: simulation.<mod> must stay importable from the
        # core layer without a cycle.
        from repro.core.engine import ConflictEliminationSolver
        from repro.core.workspace import EngineWorkspace

        if seed is None:
            seed = self.options.seed if self.options is not None else 0
        report = RunReport(
            stats={s.name: MethodStats(method=s.name) for s in self.solvers}
        )
        # One reusable buffer arena across every (method, batch) solve —
        # the batch-side counterpart of the streaming flush workspace.
        workspace = (
            EngineWorkspace()
            if any(isinstance(s, ConflictEliminationSolver) for s in self.solvers)
            else None
        )
        for batch_index, instance in enumerate(instances):
            for solver in self.solvers:
                # Independent but reproducible noise per (method, batch).
                stream = np.random.default_rng(
                    (seed, batch_index, stable_hash(solver.name))
                )
                if isinstance(solver, ConflictEliminationSolver):
                    result = solver.solve(instance, seed=stream, workspace=workspace)
                else:
                    result = solver.solve(instance, seed=stream)
                report.stats[solver.name].add(result)
        return report
