"""The untrusted-server model.

The paper's threat model (Sections I, III): the platform is *untrusted*,
so everything a worker sends it — every (obfuscated distance, budget)
release and the evolving allocation list — is world-readable, including by
rival workers.  :class:`Server` is exactly that public state:

* the **release board**: per (task, worker) pair, the append-only
  :class:`~repro.core.effective.ReleaseSet` of published proposals,
* the **allocation list** ``AL``: current winner (or ``None``) per task,
* the **privacy ledger**: the audit trail behind Theorems V.2 / VI.4.

Workers' true distances never enter this class; solvers keep them on the
worker side.
"""

from __future__ import annotations

import numpy as np

from repro.core.effective import EffectivePair, ReleaseSet
from repro.errors import InvalidInstanceError, MatchingError
from repro.matching.bipartite import Matching
from repro.privacy.accountant import PrivacyLedger
from repro.simulation.instance import ProblemInstance

__all__ = ["Server"]


class Server:
    """Public platform state for one assignment episode."""

    def __init__(self, instance: ProblemInstance):
        self._instance = instance
        self._board: dict[tuple[int, int], ReleaseSet] = {}
        # Allocation list AL and its inverse as dense index lists with a
        # ``-1`` free sentinel (not per-worker dicts): O(1) scalar reads
        # for the agent paths, O(1) churn, and a cheap array snapshot for
        # the vectorized sweeps; ``assigned_count`` is maintained
        # incrementally so nothing ever rescans the board.
        self._allocation: list[int] = [-1] * instance.num_tasks
        self._holding: list[int] = [-1] * instance.num_workers
        self._assigned_count = 0
        self.ledger = PrivacyLedger()
        self.publish_count = 0

    # -- release board -----------------------------------------------------

    def publish(self, task_index: int, worker_index: int, value: float, epsilon: float) -> None:
        """Record one published (obfuscated distance, budget) release."""
        board_key = (task_index, worker_index)
        # Not setdefault(key, ReleaseSet()): that would construct (and
        # discard) a fresh ReleaseSet on every re-publish of an existing
        # pair — pure allocator churn on the publish hot path.
        releases = self._board.get(board_key)
        if releases is None:
            releases = self._board[board_key] = ReleaseSet()
        releases.add(value, epsilon)
        task = self._instance.tasks[task_index]
        worker = self._instance.workers[worker_index]
        self.ledger.record(worker.id, task.id, epsilon)
        self.publish_count += 1

    def release_set(self, task_index: int, worker_index: int) -> ReleaseSet:
        """The (possibly empty) release set of a pair.

        Reads never insert board entries: under heavy query traffic (every
        round of every solver probes many pairs) inserting an empty
        :class:`ReleaseSet` per probed pair would bloat the board to the
        full ``m x n`` grid.  Only :meth:`publish` creates entries.
        """
        releases = self._board.get((task_index, worker_index))
        return releases if releases is not None else ReleaseSet()

    def has_releases(self, task_index: int, worker_index: int) -> bool:
        releases = self._board.get((task_index, worker_index))
        return bool(releases)

    def effective_pair(self, task_index: int, worker_index: int) -> EffectivePair:
        """The pair's effective obfuscated distance and budget.

        Raises
        ------
        InvalidInstanceError
            If the worker has never published toward the task.
        """
        releases = self._board.get((task_index, worker_index))
        if not releases:
            raise InvalidInstanceError(
                f"worker {worker_index} has no releases toward task {task_index}"
            )
        return releases.effective_pair()

    def worker_spend(self, worker_index: int) -> float:
        """Total published budget of a worker (public information)."""
        return self.ledger.worker_spend(self._instance.workers[worker_index].id)

    def board(self) -> dict[tuple[int, int], ReleaseSet]:
        """The world-readable release board, keyed by *public ids*.

        ``{(task_id, worker_id): ReleaseSet}`` for every pair with at
        least one published release — exactly what a curious observer of
        the untrusted platform sees, and what
        :mod:`repro.privacy.attack` consumes.
        """
        published = {}
        for (i, j), releases in self._board.items():
            if releases:
                key = (self._instance.tasks[i].id, self._instance.workers[j].id)
                published[key] = releases
        return published

    # -- allocation list -----------------------------------------------------

    def winner(self, task_index: int) -> int | None:
        """Current winner (worker index) of a task, or ``None``."""
        winner = self._allocation[task_index]
        return winner if winner >= 0 else None

    def task_of(self, worker_index: int) -> int | None:
        """Task currently held by a worker, or ``None``."""
        held = self._holding[worker_index]
        return held if held >= 0 else None

    def assign(self, task_index: int, worker_index: int) -> int | None:
        """Make ``worker_index`` the winner of ``task_index``.

        The worker's previously held task (if any) is vacated.  Returns the
        displaced previous winner of ``task_index`` (or ``None``).
        """
        previous = self._allocation[task_index]
        if previous == worker_index:
            return None
        held = self._holding[worker_index]
        if held >= 0:
            self._allocation[held] = -1
            self._assigned_count -= 1
        if previous >= 0:
            self._holding[previous] = -1
            self._assigned_count -= 1
        self._allocation[task_index] = worker_index
        self._holding[worker_index] = task_index
        self._assigned_count += 1
        return previous if previous >= 0 else None

    def unassign(self, task_index: int) -> int | None:
        """Vacate a task; returns the removed winner (or ``None``)."""
        previous = self._allocation[task_index]
        if previous < 0:
            return None
        self._allocation[task_index] = -1
        self._holding[previous] = -1
        self._assigned_count -= 1
        return previous

    @property
    def assigned_count(self) -> int:
        """Number of tasks currently holding a winner (O(1), incremental)."""
        return self._assigned_count

    def allocation(self) -> tuple[int | None, ...]:
        """The allocation list ``AL`` (winner index per task)."""
        return tuple(w if w >= 0 else None for w in self._allocation)

    def allocation_array(self) -> np.ndarray:
        """Winner-per-task snapshot as an int array (``-1`` = free)."""
        return np.asarray(self._allocation, dtype=np.int64)

    def holding_array(self) -> np.ndarray:
        """Task-per-worker snapshot as an int array (``-1`` = idle)."""
        return np.asarray(self._holding, dtype=np.int64)

    def matching(self) -> Matching:
        """The allocation as an id-keyed :class:`Matching`.

        Raises
        ------
        MatchingError
            If internal state ever violated one-to-one-ness (defensive;
            :meth:`assign` maintains the invariant).
        """
        pairs: dict[object, object] = {}
        for task_index, worker_index in enumerate(self._allocation):
            if worker_index < 0:
                continue
            task = self._instance.tasks[task_index]
            worker = self._instance.workers[worker_index]
            pairs[task.id] = worker.id
        try:
            return Matching(pairs)
        except MatchingError as exc:  # pragma: no cover - invariant guard
            raise MatchingError(f"server allocation corrupted: {exc}") from exc
