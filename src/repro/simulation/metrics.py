"""The Section VII-C measures, aggregated across batches.

Per-pair measures live on :class:`~repro.core.result.AssignmentResult`;
this module aggregates them over a batch sequence and computes the paper's
relative deviations:

* ``U_RD = (U_NP - U_P) / U_NP`` — how much utility privacy costs,
* ``D_RD = (D_P - D_NP) / D_NP`` — how much distance privacy costs,

each private method against its Table IX non-private counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import AssignmentResult
from repro.errors import ConfigurationError

__all__ = [
    "MethodStats",
    "relative_utility_deviation",
    "relative_distance_deviation",
]


@dataclass
class MethodStats:
    """Running aggregate of one method over a sequence of batches."""

    method: str
    batches: int = 0
    matched: int = 0
    total_utility: float = 0.0
    total_distance: float = 0.0
    total_elapsed: float = 0.0
    total_publishes: int = 0
    total_privacy_spend: float = 0.0
    total_rounds: int = 0

    def add(self, result: AssignmentResult) -> None:
        """Fold one batch result into the aggregate."""
        if result.method != self.method:
            raise ConfigurationError(
                f"cannot add {result.method!r} result to {self.method!r} stats"
            )
        self.batches += 1
        self.matched += result.matched_count
        self.total_utility += result.total_utility
        self.total_distance += result.total_distance
        self.total_elapsed += result.elapsed_seconds
        self.total_publishes += result.publishes
        self.total_privacy_spend += result.total_privacy_spend
        self.total_rounds += result.rounds

    @property
    def average_utility(self) -> float:
        """``U_AVG`` over all matched pairs of all batches."""
        return self.total_utility / self.matched if self.matched else 0.0

    @property
    def average_distance(self) -> float:
        """``D_AVG`` over all matched pairs of all batches."""
        return self.total_distance / self.matched if self.matched else 0.0

    @property
    def elapsed_ms_per_batch(self) -> float:
        """Mean wall-clock per batch in milliseconds (the Figure 4 axis)."""
        return 1000.0 * self.total_elapsed / self.batches if self.batches else 0.0


def relative_utility_deviation(non_private: MethodStats, private: MethodStats) -> float:
    """``U_RD = (U_NP - U_P) / U_NP`` (Section VII-C).

    Raises
    ------
    ConfigurationError
        If the non-private reference utility is zero (undefined ratio;
        cannot occur at the paper's parameter ranges).
    """
    reference = non_private.average_utility
    if reference == 0.0:
        raise ConfigurationError(
            f"U_RD undefined: non-private reference {non_private.method} has zero utility"
        )
    return (reference - private.average_utility) / reference


def relative_distance_deviation(non_private: MethodStats, private: MethodStats) -> float:
    """``D_RD = (D_P - D_NP) / D_NP`` (Section VII-C)."""
    reference = non_private.average_distance
    if reference == 0.0:
        raise ConfigurationError(
            f"D_RD undefined: non-private reference {non_private.method} has zero distance"
        )
    return (private.average_distance - reference) / reference
