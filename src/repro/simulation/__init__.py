"""Simulation layer: instances, the untrusted server, runner, metrics."""

from repro.simulation.instance import ProblemInstance
from repro.simulation.metrics import (
    MethodStats,
    relative_distance_deviation,
    relative_utility_deviation,
)
from repro.simulation.runner import BatchRunner, RunReport
from repro.simulation.server import Server

__all__ = [
    "ProblemInstance",
    "Server",
    "BatchRunner",
    "RunReport",
    "MethodStats",
    "relative_utility_deviation",
    "relative_distance_deviation",
]
