"""Struct-of-arrays storage for the feasible pairs of an instance.

The round-based protocol (Algorithms 1-3) is a sweep over the feasible
``(task, worker)`` pairs; tuple-keyed dict lookups and one Python object
per pair are what used to dominate solver time.  :class:`PairArrays` is
the CSR-style array core that replaced them: pairs are stored worker-major
(``offsets[j]:offsets[j+1]`` is worker ``j``'s slice, in reachable order),
and every per-pair attribute is a flat numpy array aligned to that order.

Budget vectors are ragged (micro-batch truncation shortens them), so they
live in a zero-padded ``(P, Z_max)`` matrix plus a length column;
``budget_prefix[p, k]`` is the exact left-to-right partial sum of the
first ``k`` elements (``np.cumsum`` adds in the same order Python's
``sum`` does, so prefix spends are bit-identical to the scalar
bookkeeping they replaced).
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.budgets import BudgetVector
from repro.errors import InvalidInstanceError

__all__ = ["PairArrays", "PAIR_PLANES"]

#: The flat array *planes* a :class:`PairArrays` is made of, in a fixed
#: feed order.  ``budget_prefix`` rides along even though it is derived:
#: shipping it lets :meth:`PairArrays.from_planes` skip the
#: ``__post_init__`` recompute, so an attached shared-memory view is
#: usable with zero per-attach array work.
PAIR_PLANES = (
    "offsets",
    "task",
    "worker",
    "distance",
    "budget_matrix",
    "budget_len",
    "task_value",
    "budget_prefix",
)


@dataclass(frozen=True, eq=False)
class PairArrays:
    """CSR-by-worker arrays describing every feasible pair.

    ``eq=False``: the auto-generated dataclass ``__eq__``/``__hash__``
    would raise on ndarray fields; compare via
    :meth:`ProblemInstance.__eq__`, which uses ``np.array_equal``.

    Attributes
    ----------
    offsets:
        ``(n + 1,)`` int64 — pair slice boundaries per worker.
    task, worker:
        ``(P,)`` int64 — task / worker index of each flat pair.
    distance:
        ``(P,)`` float64 — true distances (private inputs).
    budget_matrix:
        ``(P, Z_max)`` float64 — budget vectors, zero-padded.
    budget_len:
        ``(P,)`` int64 — live length of each budget vector.
    task_value:
        ``(m,)`` float64 — task values ``v_i``.
    """

    offsets: np.ndarray
    task: np.ndarray
    worker: np.ndarray
    distance: np.ndarray
    budget_matrix: np.ndarray
    budget_len: np.ndarray
    task_value: np.ndarray
    budget_prefix: np.ndarray = field(init=False, repr=False, compare=False)
    prefix: InitVar["np.ndarray | None"] = None

    def __post_init__(self, prefix: "np.ndarray | None") -> None:
        if prefix is None:
            prefix = np.zeros(
                (self.budget_matrix.shape[0], self.budget_matrix.shape[1] + 1)
            )
            np.cumsum(self.budget_matrix, axis=1, out=prefix[:, 1:])
        object.__setattr__(self, "budget_prefix", prefix)

    @property
    def num_pairs(self) -> int:
        return int(self.task.shape[0])

    @property
    def num_workers(self) -> int:
        return int(self.offsets.shape[0]) - 1

    @property
    def num_tasks(self) -> int:
        return int(self.task_value.shape[0])

    def worker_slice(self, worker_index: int) -> slice:
        """The flat-pair slice of one worker's reachable tasks."""
        return slice(
            int(self.offsets[worker_index]), int(self.offsets[worker_index + 1])
        )

    def budget_total(self, pair_index: int) -> float:
        """Exact total budget of one pair (left-to-right partial sum)."""
        return float(
            self.budget_prefix[pair_index, int(self.budget_len[pair_index])]
        )

    def budget_vector(self, pair_index: int) -> BudgetVector:
        """One pair's live budget vector, padding stripped.

        The single home of the matrix-row -> :class:`BudgetVector` slice
        semantics; the instance's dict view and the worker agents both
        build their vectors through it.
        """
        length = int(self.budget_len[pair_index])
        return BudgetVector(tuple(self.budget_matrix[pair_index, :length].tolist()))

    # -- zero-copy plane transport --------------------------------------

    def planes(self) -> dict[str, np.ndarray]:
        """The raw array planes, keyed by :data:`PAIR_PLANES` name.

        The shared-memory shard transport stages exactly these arrays
        (:class:`~repro.core.workspace.ShmArena`); a worker process
        reassembles the parent via :meth:`from_planes` without copying
        or recomputing anything.
        """
        return {name: getattr(self, name) for name in PAIR_PLANES}

    @classmethod
    def from_planes(cls, planes: Mapping[str, np.ndarray]) -> "PairArrays":
        """Rewrap pre-built planes (shared-memory views) without copying.

        Bypasses ``__init__``/``__post_init__`` entirely: the planes —
        including the derived ``budget_prefix`` — are installed verbatim,
        so the result is a zero-copy view over whatever buffers back the
        mapping.  The inverse of :meth:`planes`.
        """
        self = object.__new__(cls)
        for name in PAIR_PLANES:
            object.__setattr__(self, name, planes[name])
        return self

    # -- content hashing ------------------------------------------------

    def update_digest(self, digest, include_budgets: bool) -> None:
        """Feed the arrays' raw content into a hashlib-style ``digest``.

        The streaming flush-fingerprint cache keys solved flushes on this
        content (:mod:`repro.stream.cache`).  ``include_budgets`` controls
        whether the budget columns take part: non-private conflict
        elimination never reads them, so leaving them out lets flushes
        whose freshly *sampled* budgets differ still hit the cache.  One
        shape header up front removes concatenation ambiguity (every
        array's length is a function of ``(n, m, P, Z)`` and the fixed
        feed order), without paying a per-array ``repr`` on the hot path.
        """
        digest.update(
            b"%d:%d:%d:%d" % (
                self.offsets.shape[0],
                self.task_value.shape[0],
                self.task.shape[0],
                self.budget_matrix.shape[1],
            )
        )
        for array in (self.offsets, self.task, self.worker, self.distance,
                      self.task_value):
            digest.update(np.ascontiguousarray(array).tobytes())
        if include_budgets:
            digest.update(np.ascontiguousarray(self.budget_matrix).tobytes())
            digest.update(np.ascontiguousarray(self.budget_len).tobytes())

    # -- slicing --------------------------------------------------------

    def subset(
        self,
        worker_indices: Sequence[int] | np.ndarray,
        task_indices: Sequence[int] | np.ndarray,
    ) -> "PairArrays":
        """CSR slice onto a (worker, task) subset, locally renumbered.

        The shard-cut fast path: picks the full pair rows of
        ``worker_indices`` (in the given order) and renumbers tasks to
        positions in ``task_indices``.  The subset must be *closed* — every
        selected worker's reachable tasks must appear in ``task_indices``
        — which is exactly the conflict-free shard invariant; a pair that
        escapes the task set raises :class:`InvalidInstanceError`.

        Budget rows are copied verbatim (narrowed to the subset's own
        ``Z_max``), so prefix sums — recomputed by ``__post_init__`` over
        the same values in the same order — stay bit-identical to the
        parent's.
        """
        w_sel = np.asarray(worker_indices, dtype=np.int64)
        t_sel = np.asarray(task_indices, dtype=np.int64)
        task_map = np.full(self.num_tasks, -1, dtype=np.int64)
        task_map[t_sel] = np.arange(t_sel.shape[0], dtype=np.int64)

        counts = self.offsets[w_sel + 1] - self.offsets[w_sel]
        new_offsets = np.zeros(w_sel.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=new_offsets[1:])
        total = int(new_offsets[-1])
        # Ragged range concatenation without a per-worker Python loop:
        # each selected worker's slice start, rebased onto the new CSR.
        sel = np.repeat(self.offsets[w_sel] - new_offsets[:-1], counts) + np.arange(
            total, dtype=np.int64
        )

        new_task = task_map[self.task[sel]]
        if np.any(new_task < 0):
            escaped = int(self.task[sel][np.argmax(new_task < 0)])
            raise InvalidInstanceError(
                f"subset is not task-closed: task {escaped} reachable from a "
                f"selected worker is outside the task subset"
            )
        new_len = self.budget_len[sel]
        z_max = int(new_len.max()) if new_len.size else 1
        # Advanced indexing always materialises owned copies, so nothing
        # below aliases the parent (or a shared-memory segment backing it).
        return PairArrays(
            offsets=new_offsets,
            task=new_task,
            worker=np.repeat(np.arange(w_sel.shape[0], dtype=np.int64), counts),
            distance=self.distance[sel],
            budget_matrix=self.budget_matrix[sel, :z_max],
            budget_len=new_len,
            task_value=self.task_value[t_sel],
            # The parent prefix rows are cumsums of the same values in the
            # same order, so slicing them is bit-identical to recomputing
            # over the narrowed matrix — and skips an O(P x Z) cumsum.
            prefix=self.budget_prefix[sel, : z_max + 1],
        )

    # -- construction --------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        reachable: Sequence[Sequence[int]],
        distance_rows: Sequence[Sequence[float]],
        budget_rows: Sequence[Sequence[Sequence[float]]],
        task_values: Sequence[float],
    ) -> "PairArrays":
        """Assemble arrays from per-worker rows (reachable order).

        ``distance_rows[j][k]`` / ``budget_rows[j][k]`` belong to pair
        ``(reachable[j][k], j)``.
        """
        counts = np.fromiter(
            (len(r) for r in reachable), dtype=np.int64, count=len(reachable)
        )
        offsets = np.zeros(len(reachable) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])

        task = np.empty(total, dtype=np.int64)
        worker = np.empty(total, dtype=np.int64)
        distance = np.empty(total, dtype=np.float64)
        z_max = 1
        for row in budget_rows:
            for vector in row:
                if len(vector) > z_max:
                    z_max = len(vector)
        budget_matrix = np.zeros((total, z_max), dtype=np.float64)
        budget_len = np.empty(total, dtype=np.int64)

        p = 0
        for j, tasks_in_range in enumerate(reachable):
            d_row = distance_rows[j]
            b_row = budget_rows[j]
            if len(d_row) != len(tasks_in_range) or len(b_row) != len(tasks_in_range):
                raise InvalidInstanceError(
                    f"worker {j}: rows of length {len(d_row)}/{len(b_row)} "
                    f"for {len(tasks_in_range)} reachable tasks"
                )
            for k, i in enumerate(tasks_in_range):
                task[p] = i
                worker[p] = j
                distance[p] = d_row[k]
                vector = b_row[k]
                budget_len[p] = len(vector)
                budget_matrix[p, : len(vector)] = vector
                p += 1
        return cls(
            offsets=offsets,
            task=task,
            worker=worker,
            distance=distance,
            budget_matrix=budget_matrix,
            budget_len=budget_len,
            task_value=np.asarray(task_values, dtype=np.float64),
        )
