"""The PA-TA problem instance (Definition 5).

A :class:`ProblemInstance` freezes everything that is *given* before any
algorithm runs: the task and worker populations, the utility model
(``f_d``, ``f_p``), the reachability sets ``R_j`` (tasks inside each
worker's service circle), the true distances of the feasible pairs, and
each pair's privacy budget vector ``eps_ij``.

Storage is struct-of-arrays (:class:`~repro.simulation.pairs.PairArrays`):
the feasible pairs live in CSR-by-worker index arrays with flat distance /
budget / value columns, which is what the vectorized proposal sweeps in
:mod:`repro.core.sweep` operate on directly.  The historical dict-shaped
accessors (``distances``, ``budgets``, ``distance()``, ``budget_vector()``,
``feasible_pairs()``) are kept as thin views over the arrays so existing
call sites keep working.

Real distances are private inputs: solvers only hand them to the
worker-local side of the computation (noise draws and PPCF gates), never
to the server model.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.budgets import BudgetSampler, BudgetVector
from repro.core.utility import UtilityModel
from repro.errors import InvalidInstanceError
from repro.datasets.workload import Batch, Task, Worker
from repro.simulation.pairs import PairArrays
from repro.spatial.geometry import euclidean
from repro.spatial.index import GridIndex
from repro.utils.rng import ensure_rng

__all__ = ["ProblemInstance"]


class ProblemInstance:
    """Immutable PA-TA instance over index-aligned tasks and workers.

    Algorithms address tasks and workers by position (``0..m-1`` /
    ``0..n-1``); public identifiers live on the :class:`Task` and
    :class:`Worker` records.  Construction is via :meth:`build` (grid
    reachability + sampled budgets), :meth:`from_arrays` (the streaming
    fast path), or the legacy dict-keyed constructor used by tests and
    worked examples.
    """

    __slots__ = (
        "tasks",
        "workers",
        "model",
        "reachable",
        "pairs",
        "_candidates",
        "_pair_index",
        "_distances",
        "_budgets",
    )

    def __init__(
        self,
        tasks: Sequence[Task],
        workers: Sequence[Worker],
        model: UtilityModel,
        reachable: Sequence[Sequence[int]],
        distances: Mapping[tuple[int, int], float] | None = None,
        budgets: Mapping[tuple[int, int], BudgetVector] | None = None,
        *,
        pairs: PairArrays | None = None,
    ):
        self.tasks = tuple(tasks)
        self.workers = tuple(workers)
        self.model = model
        self.reachable = tuple(tuple(r) for r in reachable)
        if len(self.reachable) != len(self.workers):
            raise InvalidInstanceError(
                f"reachable has {len(self.reachable)} entries for "
                f"{len(self.workers)} workers"
            )
        if pairs is None:
            if distances is None or budgets is None:
                raise InvalidInstanceError(
                    "need either pair arrays or distance/budget mappings"
                )
            pairs = self._pairs_from_mappings(distances, budgets)
        # The dict views are always rebuilt lazily from the arrays —
        # never the caller's mappings verbatim — so view iteration order
        # (CSR) and membership (exactly the feasible pairs) hold for
        # every constructor; entries for pairs outside ``reachable`` are
        # dropped.  Like them, ``candidates`` and the pair-index table
        # are lazy: the vectorized flush hot path never touches either,
        # and building them eagerly cost O(P) Python work per micro-flush.
        self._distances = None
        self._budgets = None
        self._candidates = None
        self._pair_index = None
        self.pairs = pairs

    def _pairs_from_mappings(
        self,
        distances: Mapping[tuple[int, int], float],
        budgets: Mapping[tuple[int, int], BudgetVector],
    ) -> PairArrays:
        """Validate the legacy dict form and pack it into CSR arrays."""
        distance_rows: list[list[float]] = []
        budget_rows: list[list[tuple[float, ...]]] = []
        for j, tasks_in_range in enumerate(self.reachable):
            d_row: list[float] = []
            b_row: list[tuple[float, ...]] = []
            for i in tasks_in_range:
                if not 0 <= i < len(self.tasks):
                    raise InvalidInstanceError(
                        f"worker {j} reaches unknown task index {i}"
                    )
                if (i, j) not in distances:
                    raise InvalidInstanceError(
                        f"feasible pair ({i}, {j}) has no distance"
                    )
                if (i, j) not in budgets:
                    raise InvalidInstanceError(
                        f"feasible pair ({i}, {j}) has no budget vector"
                    )
                d_row.append(float(distances[(i, j)]))
                b_row.append(tuple(budgets[(i, j)].epsilons))
            distance_rows.append(d_row)
            budget_rows.append(b_row)
        return PairArrays.from_rows(
            self.reachable,
            distance_rows,
            budget_rows,
            [t.value for t in self.tasks],
        )

    # -- construction --------------------------------------------------

    #: Below this many ``tasks * workers``, :meth:`build` skips the grid
    #: index and scans task coordinates directly (identical ``math.hypot``
    #: predicate, identical sorted reachability).  Micro-flushes — the
    #: streaming hot path — live far below it; the grid's asymptotics only
    #: pay off on batch-experiment scales.
    BRUTE_FORCE_PAIR_LIMIT = 4096

    @classmethod
    def build(
        cls,
        tasks: Sequence[Task],
        workers: Sequence[Worker],
        budget_sampler: BudgetSampler | None = None,
        model: UtilityModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "ProblemInstance":
        """Materialise reachability, distances and budget vectors.

        ``seed`` drives only the budget-vector draws; distances are exact.
        Budget vectors are drawn in one batched ``uniform`` call covering
        every pair, which consumes the generator stream exactly as the
        historical per-worker (and before that, pair-at-a-time) sampling
        did — worker-major, reachable order.  Pair arrays are assembled
        directly (no per-pair row loop); small instances additionally use
        the brute-force reachability scan, whose single ``math.hypot``
        per pair doubles as the exact distance.
        """
        rng = ensure_rng(seed)
        sampler = budget_sampler or BudgetSampler()
        utility_model = model or UtilityModel()
        tasks = tuple(tasks)
        workers = tuple(workers)
        _check_unique_ids(tasks, workers)

        reachable: list[tuple[int, ...]] = []
        distance_rows: list[list[float]] = []
        if not tasks:
            reachable = [()] * len(workers)
            distance_rows = [[] for _ in workers]
        elif len(tasks) * len(workers) <= cls.BRUTE_FORCE_PAIR_LIMIT:
            # Micro-flush fast path: one exact hypot per pair serves as
            # both the radius predicate (the same one GridIndex applies
            # bucket-by-bucket) and the distance, and task order is
            # naturally ascending — bit-identical reachability and
            # distances, none of the grid construction/scan overhead.
            coordinates = [
                (float(t.location[0]), float(t.location[1])) for t in tasks
            ]
            for worker in workers:
                wx = float(worker.location[0])
                wy = float(worker.location[1])
                radius = worker.radius
                in_range: list[int] = []
                row: list[float] = []
                for i, (tx, ty) in enumerate(coordinates):
                    d = math.hypot(wx - tx, wy - ty)
                    if d <= radius:
                        in_range.append(i)
                        row.append(d)
                reachable.append(tuple(in_range))
                distance_rows.append(row)
        else:
            index = GridIndex([t.location for t in tasks])
            for worker in workers:
                in_range = tuple(index.query_circle(worker.location, worker.radius))
                location = worker.location
                reachable.append(in_range)
                distance_rows.append(
                    [euclidean(location, tasks[i].location) for i in in_range]
                )

        counts = np.fromiter(
            (len(r) for r in reachable), dtype=np.int64, count=len(reachable)
        )
        offsets = np.zeros(len(reachable) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        # One batched draw for every pair's budget vector: numpy fills
        # row-major, so the stream order equals the historical per-worker
        # sample_matrix calls (worker-major, reachable order).
        budget_matrix = sampler.sample_matrix(rng, total)
        if total == 0:
            budget_matrix = budget_matrix.reshape(0, 1)
        pairs = PairArrays(
            offsets=offsets,
            task=np.fromiter(
                (i for row in reachable for i in row), dtype=np.int64, count=total
            ),
            worker=np.repeat(np.arange(len(workers), dtype=np.int64), counts),
            distance=np.fromiter(
                (d for row in distance_rows for d in row),
                dtype=np.float64,
                count=total,
            ),
            budget_matrix=budget_matrix,
            budget_len=np.full(total, budget_matrix.shape[1], dtype=np.int64),
            task_value=np.asarray([t.value for t in tasks], dtype=np.float64),
        )
        return cls(
            tasks=tasks,
            workers=workers,
            model=utility_model,
            reachable=reachable,
            pairs=pairs,
        )

    @classmethod
    def from_arrays(
        cls,
        tasks: Sequence[Task],
        workers: Sequence[Worker],
        model: UtilityModel,
        reachable: Sequence[Sequence[int]],
        pairs: PairArrays,
    ) -> "ProblemInstance":
        """Wrap pre-assembled pair arrays (the streaming fast path)."""
        return cls(tasks=tasks, workers=workers, model=model, reachable=reachable, pairs=pairs)

    @classmethod
    def from_batch(
        cls,
        batch: Batch,
        budget_sampler: BudgetSampler | None = None,
        model: UtilityModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "ProblemInstance":
        """Build an instance from one workload batch."""
        return cls.build(batch.tasks, batch.workers, budget_sampler, model, seed)

    # -- dict-shaped compatibility views --------------------------------

    @property
    def candidates(self) -> tuple[tuple[int, ...], ...]:
        """Per-task candidate workers (lazy view over the pair arrays)."""
        if self._candidates is None:
            per_task: list[list[int]] = [[] for _ in self.tasks]
            pairs = self.pairs
            for i, j in zip(pairs.task.tolist(), pairs.worker.tolist()):
                per_task[i].append(j)
            self._candidates = tuple(tuple(c) for c in per_task)
        return self._candidates

    def _pair_table(self) -> dict[tuple[int, int], int]:
        """The lazily built ``(task, worker) -> flat pair`` table."""
        if self._pair_index is None:
            pairs = self.pairs
            self._pair_index = {
                (i, j): p
                for p, (i, j) in enumerate(
                    zip(pairs.task.tolist(), pairs.worker.tolist())
                )
            }
        return self._pair_index

    @property
    def distances(self) -> dict[tuple[int, int], float]:
        """``{(task_index, worker_index): distance}`` view of the arrays."""
        if self._distances is None:
            self._distances = {
                (i, j): d
                for (i, j), d in zip(
                    self._pair_table(), self.pairs.distance.tolist()
                )
            }
        return self._distances

    @property
    def budgets(self) -> dict[tuple[int, int], BudgetVector]:
        """``{(task_index, worker_index): BudgetVector}`` view of the arrays."""
        if self._budgets is None:
            pairs = self.pairs
            self._budgets = {
                (i, j): pairs.budget_vector(p)
                for p, (i, j) in enumerate(self._pair_table())
            }
        return self._budgets

    def pair_index(self, task_index: int, worker_index: int) -> int:
        """Flat index of a feasible pair in the CSR arrays.

        Raises
        ------
        InvalidInstanceError
            If the pair is infeasible (outside the worker's service area).
        """
        try:
            return self._pair_table()[(task_index, worker_index)]
        except KeyError:
            raise InvalidInstanceError(
                f"pair (task {task_index}, worker {worker_index}) is not feasible"
            ) from None

    # -- queries ---------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def num_feasible_pairs(self) -> int:
        return self.pairs.num_pairs

    def feasible_pairs(self) -> Iterator[tuple[int, int]]:
        """All ``(task_index, worker_index)`` pairs, CSR (worker-major) order."""
        return iter(self._pair_table())

    def distance(self, task_index: int, worker_index: int) -> float:
        """True distance of a feasible pair.

        Served from the (lazily materialised) dict view: the scalar sweep
        probes distances pair-at-a-time, and a plain dict hit beats array
        indexing for that access pattern.

        Raises
        ------
        InvalidInstanceError
            If the pair is infeasible (outside the worker's service area).
        """
        table = self._distances
        if table is None:
            table = self.distances
        try:
            return table[(task_index, worker_index)]
        except KeyError:
            raise InvalidInstanceError(
                f"pair (task {task_index}, worker {worker_index}) is not feasible"
            ) from None

    def budget_vector(self, task_index: int, worker_index: int) -> BudgetVector:
        """The privacy budget vector ``eps_ij`` of a feasible pair."""
        table = self._budgets
        if table is None:
            table = self.budgets
        try:
            return table[(task_index, worker_index)]
        except KeyError:
            raise InvalidInstanceError(
                f"pair (task {task_index}, worker {worker_index}) is not feasible"
            ) from None

    def base_utility(self, task_index: int, worker_index: int) -> float:
        """``v_i - f_d(d_ij)``: utility before any privacy cost."""
        task = self.tasks[task_index]
        return self.model.utility(task.value, self.distance(task_index, worker_index))

    def mean_tasks_per_worker(self) -> float:
        """Average ``|R_j|`` — the density statistic driving Figures 7/8."""
        if not self.workers:
            return 0.0
        return sum(len(r) for r in self.reachable) / len(self.workers)

    # -- equality ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProblemInstance):
            return NotImplemented
        return (
            self.tasks == other.tasks
            and self.workers == other.workers
            and self.model == other.model
            and self.reachable == other.reachable
            and np.array_equal(self.pairs.task, other.pairs.task)
            and np.array_equal(self.pairs.worker, other.pairs.worker)
            and np.array_equal(self.pairs.distance, other.pairs.distance)
            and np.array_equal(self.pairs.budget_len, other.pairs.budget_len)
            and _padded_equal(self.pairs.budget_matrix, other.pairs.budget_matrix)
        )

    def __repr__(self) -> str:
        return (
            f"ProblemInstance({self.num_tasks} tasks, {self.num_workers} workers, "
            f"{self.num_feasible_pairs} feasible pairs)"
        )


def _padded_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Budget matrices compare equal up to trailing zero padding."""
    width = max(a.shape[1], b.shape[1])
    if a.shape[1] != width:
        a = np.pad(a, ((0, 0), (0, width - a.shape[1])))
    if b.shape[1] != width:
        b = np.pad(b, ((0, 0), (0, width - b.shape[1])))
    return np.array_equal(a, b)


def _check_unique_ids(tasks: tuple[Task, ...], workers: tuple[Worker, ...]) -> None:
    task_ids = {t.id for t in tasks}
    if len(task_ids) != len(tasks):
        raise InvalidInstanceError("task ids must be unique")
    worker_ids = {w.id for w in workers}
    if len(worker_ids) != len(workers):
        raise InvalidInstanceError("worker ids must be unique")
