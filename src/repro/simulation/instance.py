"""The PA-TA problem instance (Definition 5).

A :class:`ProblemInstance` freezes everything that is *given* before any
algorithm runs: the task and worker populations, the utility model
(``f_d``, ``f_p``), the reachability sets ``R_j`` (tasks inside each
worker's service circle), the true distances of the feasible pairs, and
each pair's privacy budget vector ``eps_ij``.

Real distances are private inputs: solvers only hand them to the
worker-local side of the computation (noise draws and PPCF gates), never
to the server model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core.budgets import BudgetSampler, BudgetVector
from repro.core.utility import UtilityModel
from repro.errors import InvalidInstanceError
from repro.datasets.workload import Batch, Task, Worker
from repro.spatial.geometry import euclidean
from repro.spatial.index import GridIndex
from repro.utils.rng import ensure_rng

__all__ = ["ProblemInstance"]


@dataclass(frozen=True)
class ProblemInstance:
    """Immutable PA-TA instance over index-aligned tasks and workers.

    Algorithms address tasks and workers by position (``0..m-1`` /
    ``0..n-1``); public identifiers live on the :class:`Task` and
    :class:`Worker` records.  Construction is via :meth:`build`.
    """

    tasks: tuple[Task, ...]
    workers: tuple[Worker, ...]
    model: UtilityModel
    reachable: tuple[tuple[int, ...], ...]
    distances: dict[tuple[int, int], float]
    budgets: dict[tuple[int, int], BudgetVector]
    candidates: tuple[tuple[int, ...], ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.reachable) != len(self.workers):
            raise InvalidInstanceError(
                f"reachable has {len(self.reachable)} entries for {len(self.workers)} workers"
            )
        per_task: list[list[int]] = [[] for _ in self.tasks]
        for j, tasks_in_range in enumerate(self.reachable):
            for i in tasks_in_range:
                if not 0 <= i < len(self.tasks):
                    raise InvalidInstanceError(f"worker {j} reaches unknown task index {i}")
                if (i, j) not in self.distances:
                    raise InvalidInstanceError(f"feasible pair ({i}, {j}) has no distance")
                if (i, j) not in self.budgets:
                    raise InvalidInstanceError(f"feasible pair ({i}, {j}) has no budget vector")
                per_task[i].append(j)
        object.__setattr__(self, "candidates", tuple(tuple(c) for c in per_task))

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        tasks: Sequence[Task],
        workers: Sequence[Worker],
        budget_sampler: BudgetSampler | None = None,
        model: UtilityModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "ProblemInstance":
        """Materialise reachability, distances and budget vectors.

        ``seed`` drives only the budget-vector draws; distances are exact.
        """
        rng = ensure_rng(seed)
        sampler = budget_sampler or BudgetSampler()
        utility_model = model or UtilityModel()
        tasks = tuple(tasks)
        workers = tuple(workers)
        _check_unique_ids(tasks, workers)

        index = GridIndex([t.location for t in tasks]) if tasks else None
        reachable: list[tuple[int, ...]] = []
        distances: dict[tuple[int, int], float] = {}
        budgets: dict[tuple[int, int], BudgetVector] = {}
        for j, worker in enumerate(workers):
            in_range = (
                tuple(index.query_circle(worker.location, worker.radius)) if index else ()
            )
            reachable.append(in_range)
            for i in in_range:
                distances[(i, j)] = euclidean(worker.location, tasks[i].location)
                budgets[(i, j)] = sampler.sample(rng)
        return cls(
            tasks=tasks,
            workers=workers,
            model=utility_model,
            reachable=tuple(reachable),
            distances=distances,
            budgets=budgets,
        )

    @classmethod
    def from_batch(
        cls,
        batch: Batch,
        budget_sampler: BudgetSampler | None = None,
        model: UtilityModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "ProblemInstance":
        """Build an instance from one workload batch."""
        return cls.build(batch.tasks, batch.workers, budget_sampler, model, seed)

    # -- queries ---------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def num_feasible_pairs(self) -> int:
        return len(self.distances)

    def feasible_pairs(self) -> Iterator[tuple[int, int]]:
        """All ``(task_index, worker_index)`` pairs with reachability."""
        return iter(self.distances)

    def distance(self, task_index: int, worker_index: int) -> float:
        """True distance of a feasible pair.

        Raises
        ------
        InvalidInstanceError
            If the pair is infeasible (outside the worker's service area).
        """
        try:
            return self.distances[(task_index, worker_index)]
        except KeyError:
            raise InvalidInstanceError(
                f"pair (task {task_index}, worker {worker_index}) is not feasible"
            ) from None

    def budget_vector(self, task_index: int, worker_index: int) -> BudgetVector:
        """The privacy budget vector ``eps_ij`` of a feasible pair."""
        try:
            return self.budgets[(task_index, worker_index)]
        except KeyError:
            raise InvalidInstanceError(
                f"pair (task {task_index}, worker {worker_index}) is not feasible"
            ) from None

    def base_utility(self, task_index: int, worker_index: int) -> float:
        """``v_i - f_d(d_ij)``: utility before any privacy cost."""
        task = self.tasks[task_index]
        return self.model.utility(task.value, self.distance(task_index, worker_index))

    def mean_tasks_per_worker(self) -> float:
        """Average ``|R_j|`` — the density statistic driving Figures 7/8."""
        if not self.workers:
            return 0.0
        return sum(len(r) for r in self.reachable) / len(self.workers)


def _check_unique_ids(tasks: tuple[Task, ...], workers: tuple[Worker, ...]) -> None:
    task_ids = {t.id for t in tasks}
    if len(task_ids) != len(tasks):
        raise InvalidInstanceError("task ids must be unique")
    worker_ids = {w.id for w in workers}
    if len(worker_ids) != len(workers):
        raise InvalidInstanceError("worker ids must be unique")
