"""Exception hierarchy for :mod:`repro`.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can guard any library call with a single ``except ReproError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An experiment or solver configuration value is invalid."""


class InvalidInstanceError(ReproError):
    """A problem instance violates a structural invariant.

    Examples: a task referenced by a budget vector does not exist, a worker
    has a negative service radius, or a distance matrix has the wrong shape.
    """


class FlushBudgetError(ConfigurationError):
    """A micro-batch flush violated a worker's shift-budget accounting.

    Raised by the streaming layer when the single-home flush-cap check of
    :meth:`repro.stream.batcher.MicroBatcher.build_instance` finds a
    worst-case flush spend above a worker's remaining shift budget, or
    when :meth:`repro.stream.batcher.WorkerBudgetTracker.charge` audits a
    ledger that pushed a worker past capacity.  Carries the offending
    worker and the numbers so parallel shard workers surface diagnosable
    failures instead of a bare assertion.

    Subclasses :class:`ConfigurationError` so pre-existing guards keep
    catching it.
    """

    def __init__(
        self,
        message: str,
        *,
        worker_id: object = None,
        spend: float | None = None,
        remaining: float | None = None,
    ):
        super().__init__(message)
        self.worker_id = worker_id
        self.spend = spend
        self.remaining = remaining


class BudgetExhaustedError(ReproError):
    """A worker attempted to spend a privacy budget element that is gone.

    Raised by :class:`repro.core.budgets.BudgetState` when a proposal would
    consume more than the configured ``Z`` budget elements for a pair.
    """


class MatchingError(ReproError):
    """A matching routine produced or received an inconsistent matching."""


class ConvergenceError(ReproError):
    """An iterative solver exceeded its round limit without converging."""


class DatasetError(ReproError):
    """A workload generator or loader received invalid parameters or data."""


class FlushTimeoutError(ReproError):
    """A pooled shard solve exceeded the flush watchdog deadline.

    Raised by :class:`repro.stream.shards.ShardedFlushExecutor` when a
    pooled future does not complete within ``flush_timeout`` seconds.
    The executor catches it itself and degrades down the transport/mode
    ladder, so callers only see it if every rung fails.
    """


class InjectedFault(ReproError):
    """A deterministic fault fired from an active :class:`~repro.faults.FaultPlan`.

    Injection sites raise this to simulate a crash; recovery paths treat
    it exactly like the organic failure it stands in for.  ``kind`` is
    one of :data:`repro.faults.FAULT_KINDS`; ``site`` names where in the
    code the fault fired.
    """

    def __init__(self, message: str, *, kind: str = "", site: str = ""):
        super().__init__(message)
        self.kind = kind
        self.site = site


class JournalError(ReproError):
    """A tenant journal is unusable (unwritable directory, bad header).

    Torn or corrupt *tails* are not errors — the journal self-truncates
    at the first damaged line on open — but a journal whose first entry
    is not a session open, or that cannot be written at all, raises.
    """


class ServiceError(ReproError):
    """A dispatch-service request failed on the server side.

    Raised by :class:`repro.service.ServiceClient` when a request comes
    back as an :class:`~repro.api.wire.ErrorReply`.  ``code`` is the
    server-side exception class name from the reply.
    """

    def __init__(self, message: str, *, code: str = ""):
        super().__init__(message)
        self.code = code
