"""Exception hierarchy for :mod:`repro`.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can guard any library call with a single ``except ReproError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An experiment or solver configuration value is invalid."""


class InvalidInstanceError(ReproError):
    """A problem instance violates a structural invariant.

    Examples: a task referenced by a budget vector does not exist, a worker
    has a negative service radius, or a distance matrix has the wrong shape.
    """


class BudgetExhaustedError(ReproError):
    """A worker attempted to spend a privacy budget element that is gone.

    Raised by :class:`repro.core.budgets.BudgetState` when a proposal would
    consume more than the configured ``Z`` budget elements for a pair.
    """


class MatchingError(ReproError):
    """A matching routine produced or received an inconsistent matching."""


class ConvergenceError(ReproError):
    """An iterative solver exceeded its round limit without converging."""


class DatasetError(ReproError):
    """A workload generator or loader received invalid parameters or data."""
