"""Span tracing for the flush pipeline (near-zero-cost when off).

A :class:`Tracer` records a tree of named, monotonic-clock **spans**::

    tracer = Tracer()
    with tracer.span("flush"):
        with tracer.span("flush.build"):
            ...
        tracer.event("cache.miss")

Spans nest through a stack: each span remembers the index of its parent
(``-1`` for roots) and its depth, so the recorded flat list reconstructs
the tree without bookkeeping at read time.  :meth:`Tracer.event` records
a zero-duration span (cache hits, workspace contention) at the current
depth.

**The off switch is the default.**  Every instrumented component takes a
tracer defaulting to :data:`NULL_TRACER`, whose ``span``/``event`` are
no-ops returning one shared, reusable context manager — instrumentation
with tracing off costs an attribute lookup and an empty ``with`` block,
which the obs-overhead benchmark pins to be within noise of the
pre-instrumentation hot path.

:class:`Stopwatch` is the shared timing helper that replaced the
``started = time.perf_counter()`` / ``elapsed_seconds = ...`` pairs
previously duplicated across the solvers: wrap the work in
``with stopwatch() as timer`` and read ``timer.seconds`` after the
block (``timer.elapsed`` gives a live reading inside it).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Stopwatch",
    "stopwatch",
    "aggregate_phases",
]


@dataclass(slots=True)
class Span:
    """One recorded span: a named, timed slice of the pipeline.

    ``start`` is a monotonic (``perf_counter``) timestamp — meaningful
    only relative to other spans of the same process.  ``seconds`` is
    0.0 while the span is open and for point events.  ``parent`` indexes
    the enclosing span in the tracer's flat list (-1 for roots);
    ``depth`` is the nesting level (roots are 0).
    """

    name: str
    start: float
    seconds: float
    parent: int
    index: int
    depth: int

    def to_dict(self) -> dict:
        """A JSON-ready mapping (the JSONL trace-dump row)."""
        return {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "parent": self.parent,
            "index": self.index,
            "depth": self.depth,
        }


class _SpanContext:
    """Context manager recording one span on enter/exit."""

    __slots__ = ("_tracer", "_name", "_index")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._stack
        span = Span(
            name=self._name,
            start=perf_counter(),
            seconds=0.0,
            parent=stack[-1] if stack else -1,
            index=len(tracer.spans),
            depth=len(stack),
        )
        self._index = span.index
        tracer.spans.append(span)
        stack.append(span.index)
        return span

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._tracer
        span = tracer.spans[self._index]
        span.seconds = perf_counter() - span.start
        tracer._stack.pop()


class Tracer:
    """Append-only span recorder with a nesting stack.

    One tracer serves one logical timeline (a stream run); the flush
    pipeline's components all write into the owner's tracer, so a whole
    run is one flat, ordered span list (``spans``).  ``enabled`` lets
    hot paths skip work that only feeds tracing (phase aggregation, say)
    without type-checking against :class:`NullTracer`.
    """

    enabled = True

    __slots__ = ("spans", "_stack")

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[int] = []

    def span(self, name: str) -> _SpanContext:
        """A context manager recording one named span around its body."""
        return _SpanContext(self, name)

    def event(self, name: str) -> None:
        """Record a zero-duration point event at the current depth."""
        stack = self._stack
        self.spans.append(
            Span(
                name=name,
                start=perf_counter(),
                seconds=0.0,
                parent=stack[-1] if stack else -1,
                index=len(self.spans),
                depth=len(stack),
            )
        )

    def mark(self) -> int:
        """The current span count — pair with :meth:`since` to slice."""
        return len(self.spans)

    def since(self, mark: int) -> list[Span]:
        """Spans recorded at or after a :meth:`mark` (completion order)."""
        return self.spans[mark:]


class _NullSpanContext:
    """The shared no-op context manager of :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """The do-nothing tracer every instrumented component defaults to.

    ``span`` hands back one shared context manager and ``event`` returns
    immediately, so instrumentation points cost almost nothing with
    tracing off.  ``spans`` is an empty tuple: reading code can treat
    null and real tracers uniformly.
    """

    enabled = False

    __slots__ = ()

    spans: tuple = ()

    def span(self, name: str) -> _NullSpanContext:
        return _NULL_SPAN

    def event(self, name: str) -> None:
        return None

    def mark(self) -> int:
        return 0

    def since(self, mark: int) -> tuple:
        return ()


#: The process-wide no-op tracer (stateless, safe to share everywhere).
NULL_TRACER = NullTracer()


class Stopwatch:
    """The shared wall-clock helper behind every ``elapsed_seconds``.

    ``seconds`` is set when the ``with`` block exits; ``elapsed`` reads
    live while it is still open.
    """

    __slots__ = ("started", "seconds")

    def __init__(self) -> None:
        self.started = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self.started = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = perf_counter() - self.started

    @property
    def elapsed(self) -> float:
        """Seconds since entry (live; equals ``seconds`` after exit)."""
        return perf_counter() - self.started


def stopwatch() -> Stopwatch:
    """A fresh :class:`Stopwatch` (reads as English at the ``with`` site)."""
    return Stopwatch()


def aggregate_phases(
    spans: "list[Span] | tuple",
    prefix: str = "flush.",
    root: str = "flush",
) -> dict[str, float]:
    """Sum phase spans directly under one ``root`` span by short name.

    ``spans`` is one flush's slice (``tracer.since(mark)``): the first
    span named ``root`` anchors the tree, and every ``prefix``-named
    span exactly one level below it contributes its seconds under its
    suffix (``"flush.solve"`` → ``"solve"``).  Deeper spans (engine
    rounds, point events) are ignored — they are *inside* a phase, and
    counting them would double-book time.
    """
    totals: dict[str, float] = {}
    root_depth: int | None = None
    for span in spans:
        if root_depth is None:
            if span.name == root:
                root_depth = span.depth
            continue
        if span.depth == root_depth + 1 and span.name.startswith(prefix):
            phase = span.name[len(prefix):]
            totals[phase] = totals.get(phase, 0.0) + span.seconds
    return totals
