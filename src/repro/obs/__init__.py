"""Observability: flush tracing, online stream indicators, metrics export.

The obs package is the lowest observability layer of the reproduction —
it imports only the standard library and :mod:`repro.errors`, so every
other layer (core solvers, the streaming simulator, the experiments CLI)
can instrument itself without import cycles.

* :mod:`repro.obs.tracer` — :class:`Tracer` span recording (no-op
  :data:`NULL_TRACER` default), the shared :class:`Stopwatch` timing
  helper, and :func:`aggregate_phases` for per-flush phase breakdowns.
* :mod:`repro.obs.indicators` — online windowed statistics
  (:class:`RollingQuantile`, :class:`Ewma`, :class:`WarmupZScore`) with
  explicit warmup and a no-lookahead contract.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of labelled
  counters/gauges/histograms with Prometheus text exposition.
* :mod:`repro.obs.export` — JSONL trace dumps, Prometheus file export,
  and the flame-style ``profile`` summary over a stream report.
"""

from repro.obs.export import (
    format_profile,
    registry_from_report,
    write_metrics_prometheus,
    write_trace_jsonl,
)
from repro.obs.indicators import Ewma, RollingQuantile, WarmupZScore
from repro.obs.metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Stopwatch,
    Tracer,
    aggregate_phases,
    stopwatch,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Stopwatch",
    "stopwatch",
    "aggregate_phases",
    "RollingQuantile",
    "Ewma",
    "WarmupZScore",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "write_trace_jsonl",
    "registry_from_report",
    "write_metrics_prometheus",
    "format_profile",
]
