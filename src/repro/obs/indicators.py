"""Online windowed stream indicators: stateful, warmup-explicit, no lookahead.

Each indicator is a small state machine driven by ``update(x)`` — one
call per observed event, in stream order.  The contract, pinned by the
property suite (``tests/properties/test_prop_indicators.py``):

* **No lookahead.**  The value after the ``k``-th update is a pure
  function of the first ``k`` observations; truncating the stream never
  changes earlier outputs.
* **Explicit warmup.**  ``ready`` is ``False`` until the indicator has
  seen its ``warmup`` observations; before that ``value`` reports the
  neutral element (0.0, or ``nan`` for quantiles) rather than a noisy
  estimate dressed up as signal.
* **Batch equivalence.**  Each online value matches its post-hoc numpy
  counterpart computed over the same observations (exact window
  quantiles via a sorted window; EWMA via the standard recurrence with
  warmup-mean seeding; z-scores against the frozen warmup baseline).

These are generic primitives; the streaming layer composes them into
:class:`repro.stream.metrics.OnlineIndicators`, which is what
:class:`~repro.stream.metrics.StreamStats` updates during the run.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque

from repro.errors import ConfigurationError

__all__ = ["RollingQuantile", "Ewma", "WarmupZScore"]


def _check_warmup(warmup: int) -> int:
    if warmup < 1:
        raise ConfigurationError(f"warmup must be >= 1, got {warmup}")
    return warmup


class RollingQuantile:
    """Exact quantiles over a sliding window of the last ``window`` values.

    A sorted copy of the window is maintained incrementally (binary
    insert/remove, O(log w) search + O(w) shift — cheap at the default
    window of 256 floats), so :meth:`value` is *exactly*
    ``np.percentile(last_window, q)`` (linear interpolation), not an
    approximation.  ``warmup`` gates readiness only; the window itself
    always holds the most recent values.
    """

    __slots__ = ("window", "warmup", "count", "_recent", "_sorted")

    def __init__(self, window: int = 256, warmup: int = 1):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window
        self.warmup = _check_warmup(warmup)
        self.count = 0
        self._recent: deque[float] = deque()
        self._sorted: list[float] = []

    @property
    def ready(self) -> bool:
        return self.count >= self.warmup

    def update(self, x: float) -> None:
        """Observe one value (evicting the oldest beyond the window)."""
        x = float(x)
        self.count += 1
        self._recent.append(x)
        insort(self._sorted, x)
        if len(self._recent) > self.window:
            oldest = self._recent.popleft()
            del self._sorted[bisect_left(self._sorted, oldest)]

    def value(self, q: float) -> float:
        """The ``q``-th percentile of the current window (nan pre-warmup)."""
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        if not self.ready:
            return math.nan
        ordered = self._sorted
        position = q / 100.0 * (len(ordered) - 1)
        lower = math.floor(position)
        fraction = position - lower
        if fraction == 0.0:
            return ordered[lower]
        return ordered[lower] * (1.0 - fraction) + ordered[lower + 1] * fraction

    @property
    def p50(self) -> float:
        return self.value(50)

    @property
    def p95(self) -> float:
        return self.value(95)


class Ewma:
    """Exponentially weighted moving average seeded by the warmup mean.

    The first ``warmup`` observations accumulate a plain mean (an EWMA
    seeded from the very first sample overweights it for the whole
    stream); from then on the standard recurrence
    ``v <- alpha * x + (1 - alpha) * v`` applies.  ``value`` is 0.0
    until the first observation.
    """

    __slots__ = ("alpha", "warmup", "count", "_warmup_sum", "_value")

    def __init__(self, alpha: float = 0.2, warmup: int = 1):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.warmup = _check_warmup(warmup)
        self.count = 0
        self._warmup_sum = 0.0
        self._value = 0.0

    @property
    def ready(self) -> bool:
        return self.count >= self.warmup

    @property
    def value(self) -> float:
        return self._value

    def update(self, x: float) -> None:
        x = float(x)
        self.count += 1
        if self.count <= self.warmup:
            self._warmup_sum += x
            self._value = self._warmup_sum / self.count
        else:
            self._value = self.alpha * x + (1.0 - self.alpha) * self._value


class WarmupZScore:
    """z-score of each observation against a frozen warmup baseline.

    The first ``warmup`` observations define the baseline (population
    mean and standard deviation, exactly ``np.mean`` / ``np.std`` of
    those samples); every later observation reports
    ``(x - mean) / std``.  A degenerate baseline (``std == 0``) reports
    ``inf`` with the sign of the deviation (0.0 on no deviation) — a
    constant-warmup stream that then moves *is* an anomaly.
    """

    __slots__ = ("warmup", "count", "_baseline", "mean", "std", "_value")

    def __init__(self, warmup: int = 30):
        self.warmup = _check_warmup(warmup)
        self.count = 0
        self._baseline: list[float] = []
        self.mean = 0.0
        self.std = 0.0
        self._value = 0.0

    @property
    def ready(self) -> bool:
        return self.count >= self.warmup

    @property
    def value(self) -> float:
        """The latest z-score (0.0 during warmup)."""
        return self._value

    def update(self, x: float) -> None:
        x = float(x)
        self.count += 1
        if self.count <= self.warmup:
            self._baseline.append(x)
            if self.count == self.warmup:
                n = len(self._baseline)
                self.mean = sum(self._baseline) / n
                variance = sum((b - self.mean) ** 2 for b in self._baseline) / n
                self.std = math.sqrt(variance)
                self._baseline = []
            return
        deviation = x - self.mean
        if self.std > 0.0:
            self._value = deviation / self.std
        elif deviation == 0.0:
            self._value = 0.0
        else:
            self._value = math.copysign(math.inf, deviation)
