"""Exporters: JSONL trace dumps, Prometheus metrics, profile summaries.

Three ways out of the process for what the tracer and the online
indicators collected during a streaming run:

* :func:`write_trace_jsonl` — every span of every method as one JSON
  line (``--trace-out``); loads into any trace tooling that eats JSONL.
* :func:`registry_from_report` / :func:`write_metrics_prometheus` — the
  run's counters, gauges and per-flush histograms as a
  :class:`~repro.obs.metrics.MetricsRegistry`, rendered as Prometheus
  text exposition (``--metrics-out``).
* :func:`format_profile` — a flame-style per-phase terminal summary
  (the ``profile`` CLI subcommand): spans aggregated by tree path with
  counts, totals and shares of the traced wall clock.

This module deliberately duck-types the report (``methods()`` /
``report[m]`` with :class:`~repro.stream.metrics.StreamStats`-shaped
values) so :mod:`repro.obs` never imports the stream layer — the obs
package stays importable from every layer below it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.stream.runner import StreamReport

__all__ = [
    "write_trace_jsonl",
    "registry_from_report",
    "write_metrics_prometheus",
    "format_profile",
]


def write_trace_jsonl(report: "StreamReport", path: "str | Path") -> int:
    """Dump every recorded span as JSON lines; returns the line count.

    Each line is a span dict plus a ``method`` label, in per-method
    recording order.  Runs without tracing enabled write an empty file
    (a valid, zero-span trace) rather than failing late.
    """
    lines = 0
    with Path(path).open("w") as handle:
        for method in report.methods():
            for span in report[method].spans:
                row = span.to_dict()
                row["method"] = method
                handle.write(json.dumps(row) + "\n")
                lines += 1
    return lines


def registry_from_report(report: "StreamReport") -> MetricsRegistry:
    """The run's aggregate measures as a labelled metrics registry.

    Counters for the stream totals, gauges for the online indicators'
    final readings, histograms over per-flush solver seconds, and
    per-phase time counters when tracing was on.
    """
    registry = MetricsRegistry()
    for method in report.methods():
        stats = report[method]
        labels = {"method": method}
        registry.counter(
            "repro_tasks_arrived_total", "tasks released into the stream", **labels
        ).inc(stats.arrived_tasks)
        registry.counter(
            "repro_tasks_assigned_total", "tasks assigned before expiry", **labels
        ).inc(stats.assigned)
        registry.counter(
            "repro_tasks_expired_total", "tasks whose deadline passed", **labels
        ).inc(stats.expired)
        registry.counter(
            "repro_flushes_total", "micro-batch flushes run", **labels
        ).inc(len(stats.flushes))
        registry.counter(
            "repro_cache_hits_total", "flush-fingerprint cache hits", **labels
        ).inc(stats.cache_hits)
        registry.counter(
            "repro_cache_misses_total", "flush-fingerprint cache misses", **labels
        ).inc(stats.cache_misses)
        registry.counter(
            "repro_privacy_spend_total", "cumulative published budget", **labels
        ).inc(stats.total_privacy_spend)
        registry.counter(
            "repro_solver_seconds_total", "wall seconds of solver work", **labels
        ).inc(stats.solver_seconds)

        online = stats.online
        gauges = (
            ("repro_latency_p50_online", "rolling-window p50 latency", online.latency_p50),
            ("repro_latency_p95_online", "rolling-window p95 latency", online.latency_p95),
            (
                "repro_throughput_ewma",
                "EWMA assigned tasks per solver second",
                online.throughput_ewma,
            ),
            ("repro_expiry_zscore", "expiry rate z-score vs warmup", online.expiry_zscore),
            (
                "repro_budget_drawdown_ewma",
                "EWMA per-worker budget drawdown per flush",
                online.budget_drawdown,
            ),
            ("repro_cache_hit_ewma", "EWMA flush-cache hit rate", online.cache_hit_ewma),
        )
        for name, help_text, value in gauges:
            if value == value:  # NaN (pre-warmup quantiles) has no gauge
                registry.gauge(name, help_text, **labels).set(value)

        histogram = registry.histogram(
            "repro_flush_solver_seconds", "per-flush solver wall seconds", **labels
        )
        for record in stats.flushes:
            histogram.observe(record.solver_seconds)
        phase_totals = stats.phase_totals
        for phase in sorted(phase_totals):
            registry.counter(
                "repro_flush_phase_seconds_total",
                "per-phase flush time from the tracer",
                method=method,
                phase=phase,
            ).inc(phase_totals[phase])
    return registry


def write_metrics_prometheus(report: "StreamReport", path: "str | Path") -> None:
    """Render :func:`registry_from_report` to ``path`` as Prometheus text."""
    Path(path).write_text(registry_from_report(report).render_prometheus())


def format_profile(report: "StreamReport", title: str = "profile") -> str:
    """A flame-style per-phase summary of one traced run, per method.

    Spans aggregate by tree path (a span's identity is its name chain
    from the root), printed depth-indented with count, total seconds,
    share of the method's root total, and mean milliseconds — the
    terminal cousin of a flame graph.  Zero-duration point events (cache
    hits, workspace contention) report counts only.
    """
    blocks: list[str] = []
    for method in report.methods():
        stats = report[method]
        spans = stats.spans
        if not spans:
            blocks.append(f"{title} method={method}: no spans (tracing was off)")
            continue
        paths: dict[int, tuple[str, ...]] = {}
        totals: dict[tuple[str, ...], list[float]] = {}
        order: list[tuple[str, ...]] = []
        root_seconds = 0.0
        for span in spans:
            parent_path = paths.get(span.parent, ())
            path = parent_path + (span.name,)
            paths[span.index] = path
            bucket = totals.get(path)
            if bucket is None:
                totals[path] = [span.seconds, 1.0]
                order.append(path)
            else:
                bucket[0] += span.seconds
                bucket[1] += 1.0
            if span.parent == -1:
                root_seconds += span.seconds
        header = (
            f"{title} method={method} flushes={len(stats.flushes)} "
            f"traced_seconds={root_seconds:.3f}"
        )
        columns = f"  {'span':<32} {'count':>7} {'total_s':>9} {'share':>7} {'mean_ms':>8}"
        lines = [header, columns, "  " + "-" * (len(columns) - 2)]
        for path in sorted(order):
            seconds, count = totals[path]
            name = "  " * (len(path) - 1) + path[-1]
            share = seconds / root_seconds if root_seconds > 0 else 0.0
            mean_ms = seconds / count * 1e3
            lines.append(
                f"  {name:<32} {int(count):>7} {seconds:>9.4f} {share:>6.1%} "
                f"{mean_ms:>8.3f}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
