"""`MetricsRegistry` — labelled counters, gauges and histograms + export.

A minimal, dependency-free metrics model shaped after the Prometheus
client data model: a metric has a name, a help string and a type;
a *child* of a metric is one label combination; the registry owns the
whole family tree and renders it as Prometheus text exposition
(:meth:`MetricsRegistry.render_prometheus`) — the ``--metrics-out``
artifact of the streaming CLI.

Usage::

    registry = MetricsRegistry()
    registry.counter("flushes_total", "flushes run", method="PUCE").inc()
    registry.gauge("latency_p95", "rolling p95", method="PUCE").set(0.12)
    registry.histogram("flush_seconds", "per-flush wall").observe(0.003)
    print(registry.render_prometheus())

Names must match the Prometheus grammar; a metric name may be registered
under exactly one type (re-registering with another type is a
:class:`~repro.errors.ConfigurationError`, not a silent overwrite).
"""

from __future__ import annotations

import math
import re
from typing import Iterable

from repro.errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds): micro-flush to slow-solve scale.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


class Counter:
    """A monotonically increasing value (one label combination)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counters only go up, got inc({amount})")
        self.value += amount


class Gauge:
    """A value that may go up or down (one label combination)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Cumulative-bucket histogram (one label combination)."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or sorted(bounds) != list(bounds):
            raise ConfigurationError(
                f"histogram buckets must be non-empty and ascending, got {bounds}"
            )
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += value
        self.count += 1
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[position] += 1
                break


class _Family:
    """One metric name: its type, help text, and per-label children."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help: str):
        self.name = name
        self.kind = kind
        self.help = help
        self.children: dict[tuple[tuple[str, str], ...], object] = {}


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    for label in labels:
        if not _LABEL_RE.match(label):
            raise ConfigurationError(f"invalid label name {label!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


class MetricsRegistry:
    """Get-or-create registry of metric families keyed by name.

    ``counter`` / ``gauge`` / ``histogram`` return the child for the
    given label combination, creating family and child on first use —
    so instrumentation sites never pre-declare, and exporters see every
    combination that actually occurred.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _family(self, name: str, kind: str, help: str) -> _Family:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help)
            self._families[name] = family
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        family = self._family(name, "counter", help)
        child = family.children.setdefault(_label_key(labels), Counter())
        return child

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        family = self._family(name, "gauge", help)
        child = family.children.setdefault(_label_key(labels), Gauge())
        return child

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        family = self._family(name, "histogram", help)
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            child = Histogram(buckets)
            family.children[key] = child
        return child

    # -- export ------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                if isinstance(child, Histogram):
                    cumulative = 0
                    for bound, bucket_count in zip(child.buckets, child.counts):
                        cumulative += bucket_count
                        le = _render_labels(key, f'le="{_format_value(bound)}"')
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    le = _render_labels(key, 'le="+Inf"')
                    lines.append(f"{name}_bucket{le} {child.count}")
                    labels = _render_labels(key)
                    lines.append(f"{name}_sum{labels} {_format_value(child.total)}")
                    lines.append(f"{name}_count{labels} {child.count}")
                else:
                    labels = _render_labels(key)
                    lines.append(f"{name}{labels} {_format_value(child.value)}")
        return "\n".join(lines) + "\n" if lines else ""
