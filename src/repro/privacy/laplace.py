"""The Laplace distribution, rate-parameterised as in the paper.

The paper writes ``Lap(x, 1/eps)`` for noise with density
``(eps/2) * exp(-eps * |x|)``; throughout this library the parameter is the
*rate* ``eps`` (the privacy budget), i.e. the classical scale is ``1/eps``.

:class:`LaplaceDifference` is the exact distribution of
``eta_a - eta_b`` for independent ``eta_a ~ Lap(rate_a)`` and
``eta_b ~ Lap(rate_b)``.  Its survival function is the closed form behind
the Probability Compare Function (Definition 6): for obfuscated values
``da_hat = da + eta_a`` and ``db_hat = db + eta_b``,

    Pr[da < db] = Pr[eta_a - eta_b > da_hat - db_hat].

Closed forms (rates ``p = rate_a``, ``q = rate_b``, ``t >= 0``):

* unequal rates:  ``sf(t) = (p^2 e^{-q t} - q^2 e^{-p t}) / (2 (p^2 - q^2))``
* equal rate p:   ``sf(t) = e^{-p t} (2 + p t) / 4``

and ``sf(-t) = 1 - sf(t)`` by symmetry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
import numpy as np

__all__ = [
    "laplace_pdf",
    "laplace_cdf",
    "laplace_cdf_array",
    "laplace_sf",
    "sample_laplace",
    "LaplaceDifference",
]

# Rates closer (relatively) than this are treated as equal; the unequal-rate
# closed form divides by (p^2 - q^2) and loses all precision near p == q.
_EQUAL_RATE_RTOL = 1e-9


def _check_rate(rate: float) -> float:
    rate = float(rate)
    if not rate > 0.0 or not math.isfinite(rate):
        raise ConfigurationError(
            f"Laplace rate (privacy budget) must be finite and > 0, got {rate}"
        )
    return rate


def laplace_pdf(x: float, rate: float, loc: float = 0.0) -> float:
    """Density ``(rate/2) * exp(-rate * |x - loc|)``."""
    rate = _check_rate(rate)
    return 0.5 * rate * math.exp(-rate * abs(x - loc))


def laplace_cdf(x: float, rate: float, loc: float = 0.0) -> float:
    """Cumulative distribution function ``Pr[X <= x]``."""
    rate = _check_rate(rate)
    z = x - loc
    if z < 0.0:
        return 0.5 * math.exp(rate * z)
    return 1.0 - 0.5 * math.exp(-rate * z)


def laplace_sf(x: float, rate: float, loc: float = 0.0) -> float:
    """Survival function ``Pr[X > x]`` (complement of the CDF)."""
    rate = _check_rate(rate)
    z = x - loc
    if z < 0.0:
        return 1.0 - 0.5 * math.exp(rate * z)
    return 0.5 * math.exp(-rate * z)


def laplace_cdf_array(x: np.ndarray, rate: np.ndarray) -> np.ndarray:
    """Elementwise :func:`laplace_cdf` over arrays, exact at the 1/2 gate.

    Computed from ``exp(-rate * |x|)`` so both branches evaluate without
    overflow (``rate * x`` for negative ``x`` is exactly the negation of
    ``rate * |x|`` in IEEE arithmetic).  ``np.exp`` can differ from
    ``math.exp`` in the last ulp, and callers gate on ``> 1/2`` (the
    PPCF decision threshold), so every element inside a guard band
    around 1/2 — far wider than any ulp discrepancy — is recomputed with
    the scalar function; elsewhere a 1-ulp difference cannot change any
    decision a caller makes at the threshold.
    """
    tail = 0.5 * np.exp(-rate * np.abs(x))
    out = np.where(x < 0.0, tail, 1.0 - tail)
    boundary = np.flatnonzero(np.abs(out - 0.5) < 1e-12)
    for i in boundary.tolist():
        out[i] = laplace_cdf(float(x[i]), float(rate[i]))
    return out


def sample_laplace(
    rng: np.random.Generator,
    rate: float,
    loc: float = 0.0,
    size: int | tuple[int, ...] | None = None,
):
    """Draw Laplace noise with the given rate (scale ``1/rate``)."""
    rate = _check_rate(rate)
    return rng.laplace(loc=loc, scale=1.0 / rate, size=size)


@dataclass(frozen=True, slots=True)
class LaplaceDifference:
    """Distribution of ``eta_a - eta_b`` for independent Laplace noises.

    Parameters are the rates (privacy budgets) of the two noises.  The
    distribution is symmetric about zero regardless of the rates.
    """

    rate_a: float
    rate_b: float

    def __post_init__(self) -> None:
        _check_rate(self.rate_a)
        _check_rate(self.rate_b)

    def _rates_equal(self) -> bool:
        p, q = self.rate_a, self.rate_b
        return abs(p - q) <= _EQUAL_RATE_RTOL * max(p, q)

    def pdf(self, z: float) -> float:
        """Density of the difference at ``z``."""
        p, q = self.rate_a, self.rate_b
        az = abs(z)
        if self._rates_equal():
            r = 0.5 * (p + q)
            return 0.25 * r * (1.0 + r * az) * math.exp(-r * az)
        coeff = p * q / (2.0 * (p * p - q * q))
        return coeff * (p * math.exp(-q * az) - q * math.exp(-p * az))

    def sf(self, t: float) -> float:
        """Survival function ``Pr[eta_a - eta_b > t]``."""
        if t < 0.0:
            return 1.0 - self.sf(-t)
        p, q = self.rate_a, self.rate_b
        if self._rates_equal():
            r = 0.5 * (p + q)
            return 0.25 * math.exp(-r * t) * (2.0 + r * t)
        return (p * p * math.exp(-q * t) - q * q * math.exp(-p * t)) / (2.0 * (p * p - q * q))

    def cdf(self, t: float) -> float:
        """Cumulative distribution function ``Pr[eta_a - eta_b <= t]``."""
        return 1.0 - self.sf(t)

    def sample(
        self,
        rng: np.random.Generator,
        size: int | tuple[int, ...] | None = None,
    ):
        """Draw from the difference distribution (for Monte-Carlo checks)."""
        a = sample_laplace(rng, self.rate_a, size=size)
        b = sample_laplace(rng, self.rate_b, size=size)
        return a - b
