"""Sliding-window privacy accounting over an unbounded stream horizon.

The paper's Theorem V.2 states each worker's LDP guarantee over their
*whole shift*: the leaked budget is the sum of every published
per-proposal budget, so a fixed capacity makes day-long streams go dark
once the fleet has spent it.  "Differential Privacy on Dynamic Data"
(arXiv 2209.01387) restates the guarantee per *sliding window* instead:
releases are aggregated with the binary mechanism's dyadic interval tree
and the privacy claim covers any window of width ``W`` — budget
regenerates as old releases age out, which is the regime an
infinite-horizon dispatch stream actually runs in.

Two accountants share one duck-typed interface (``observe`` / ``register``
/ ``record`` / ``capacity`` / ``spend_in_window`` / ``lifetime_spend`` /
``remaining`` / ``total_spend`` / ``total_in_window``; a ``windowed``
class flag tells them apart):

* :class:`GlobalAccountant` — today's fixed-budget semantics behind the
  interface, float-accumulation-order identical to the pre-horizon
  :class:`~repro.stream.batcher.WorkerBudgetTracker`, so the default
  path stays bit-identical;
* :class:`WindowAccountant` — timestamped per-worker releases in an
  append-only :class:`IntervalTree` (dyadic decomposition: range sums
  and maxima in O(log n)), windowed via binary search over the
  nondecreasing timestamps, with compaction keeping memory proportional
  to one window's releases over an infinite stream.

A :class:`HorizonPolicy` fixes the window width, the optional per-window
cap, the composition rule, and the optional decay:

* ``composition="sequential"`` — the in-window spend is the plain sum of
  in-window releases (sequential composition inside the window);
* ``composition="tree"`` — the binary-mechanism bound
  ``max_in_window(eps) * (floor(log2 n) + 1)``: each release touches at
  most one node per tree level, so the worst-case in-window leakage is
  one maximal release per level (arXiv 2209.01387, Sec. 3);
* ``decay=d`` (sequential only) — a release of age ``a`` contributes
  ``eps * d ** (a / W)``, the exponentially-discounted ledger.  Stored
  values carry the scaling ``eps * exp(k * (t_e - base))`` with
  ``k = ln(1/d) / W`` so a query is one range sum times
  ``exp(-k * (t - base))``; compaction rebases ``base`` to keep the
  stored magnitudes in float range.

:func:`naive_window_spend` is the O(n) reference semantics over a full
event list — the oracle the hypothesis property tests compare the tree
answers against.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Mapping, Union

from repro.api.options import (
    COMPOSITION_RULES,
    reject_unknown_keys,
    validate_horizon,
)
from repro.errors import ConfigurationError

__all__ = [
    "COMPOSITION_RULES",
    "HorizonPolicy",
    "IntervalTree",
    "WindowAccountant",
    "GlobalAccountant",
    "BudgetAccountant",
    "naive_window_spend",
]

WorkerId = Hashable

#: Rebase the decay scaling before the stored exponent exceeds this —
#: exp(60) ~ 1e26, far inside float range yet rebased long before any
#: in-window sum could lose precision to mixed magnitudes.
_DECAY_REBASE_EXPONENT = 60.0


def _validate_capacity(worker_id: WorkerId, capacity: float) -> float:
    """Shared register() guard — same message wherever it enters."""
    if not capacity > 0:
        raise ConfigurationError(
            f"worker {worker_id}: capacity must be positive, got {capacity}"
        )
    return float(capacity)


@dataclass(frozen=True, slots=True)
class HorizonPolicy:
    """The frozen, validated contract of one sliding-window guarantee.

    Parameters
    ----------
    window_seconds:
        Window width ``W`` in stream time units.  A release at ``t_e``
        counts toward a query at ``t`` iff ``t - W < t_e <= t`` — a
        release aged exactly ``W`` has expired.
    window_budget:
        Per-window spend cap applied to every worker (``None`` = only
        the per-worker registered capacities bind).  Where both exist,
        the tighter one wins.
    composition:
        ``"sequential"`` (in-window sum) or ``"tree"`` (the binary-
        mechanism level bound); see the module docstring.
    decay:
        Optional exponential discount in ``(0, 1)``; sequential only.
    """

    window_seconds: float
    window_budget: float | None = None
    composition: str = "sequential"
    decay: float | None = None

    def __post_init__(self) -> None:
        if self.window_seconds is None:
            raise ConfigurationError(
                "a HorizonPolicy needs window_seconds; use the "
                "GlobalAccountant for unwindowed accounting"
            )
        # One validation path: shared with SolveOptions (repro.api.options).
        validate_horizon(
            self.window_seconds, self.window_budget, self.composition, self.decay
        )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "HorizonPolicy":
        """Build from a plain dict (JSON), rejecting unknown keys."""
        return cls(**reject_unknown_keys(cls, mapping, "horizon"))

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict that :meth:`from_mapping` round-trips."""
        return {
            "window_seconds": self.window_seconds,
            "window_budget": self.window_budget,
            "composition": self.composition,
            "decay": self.decay,
        }


class IntervalTree:
    """Append-only dyadic interval tree: O(log n) range sums and maxima.

    The binary mechanism's aggregation layout: leaf ``p`` holds release
    ``p``, an internal node covers a dyadic block of leaves, and any
    contiguous ``[lo, hi)`` decomposes into at most ``2 * ceil(log2 n)``
    nodes.  Two aggregates ride the same structure — a *sum* over the
    (possibly decay-scaled) stored values and a *max* over the raw
    epsilons (the tree composition rule needs the in-window maximum).
    Capacity doubles on demand; appends are amortised O(1) plus the
    O(log n) ancestor update.
    """

    __slots__ = ("_cap", "_size", "_sum", "_max")

    def __init__(self, capacity: int = 1) -> None:
        self._cap = 1
        while self._cap < capacity:
            self._cap *= 2
        self._size = 0
        self._sum = [0.0] * (2 * self._cap)
        self._max = [0.0] * (2 * self._cap)

    def __len__(self) -> int:
        return self._size

    def leaf(self, index: int) -> float:
        """The raw epsilon of release ``index`` (compaction reads these)."""
        if not 0 <= index < self._size:
            raise ConfigurationError(
                f"leaf index {index} out of range for {self._size} releases"
            )
        return self._max[self._cap + index]

    def append(self, raw: float, scaled: float | None = None) -> None:
        """Append one release: ``raw`` feeds the max, ``scaled`` the sum
        (defaults to ``raw`` when no decay scaling is in play)."""
        if scaled is None:
            scaled = raw
        if self._size == self._cap:
            self._grow()
        node = self._cap + self._size
        self._sum[node] = scaled
        self._max[node] = raw
        self._size += 1
        node //= 2
        while node:
            self._sum[node] = self._sum[2 * node] + self._sum[2 * node + 1]
            self._max[node] = max(self._max[2 * node], self._max[2 * node + 1])
            node //= 2

    def _grow(self) -> None:
        old_cap = self._cap
        self._cap = old_cap * 2
        new_sum = [0.0] * (2 * self._cap)
        new_max = [0.0] * (2 * self._cap)
        new_sum[self._cap : self._cap + self._size] = self._sum[
            old_cap : old_cap + self._size
        ]
        new_max[self._cap : self._cap + self._size] = self._max[
            old_cap : old_cap + self._size
        ]
        for node in range(self._cap - 1, 0, -1):
            new_sum[node] = new_sum[2 * node] + new_sum[2 * node + 1]
            new_max[node] = max(new_max[2 * node], new_max[2 * node + 1])
        self._sum = new_sum
        self._max = new_max

    def _check_range(self, lo: int, hi: int) -> None:
        if not 0 <= lo <= hi <= self._size:
            raise ConfigurationError(
                f"range [{lo}, {hi}) out of bounds for {self._size} releases"
            )

    def range_sum(self, lo: int, hi: int) -> float:
        """Sum of stored (scaled) values over releases ``[lo, hi)``."""
        self._check_range(lo, hi)
        total = 0.0
        lo += self._cap
        hi += self._cap
        while lo < hi:
            if lo & 1:
                total += self._sum[lo]
                lo += 1
            if hi & 1:
                hi -= 1
                total += self._sum[hi]
            lo //= 2
            hi //= 2
        return total

    def range_max(self, lo: int, hi: int) -> float:
        """Max raw epsilon over releases ``[lo, hi)`` (0.0 when empty)."""
        self._check_range(lo, hi)
        best = 0.0
        lo += self._cap
        hi += self._cap
        while lo < hi:
            if lo & 1:
                best = max(best, self._max[lo])
                lo += 1
            if hi & 1:
                hi -= 1
                best = max(best, self._max[hi])
            lo //= 2
            hi //= 2
        return best


class _ReleaseSeries:
    """One worker's timestamped releases: time array + interval tree.

    Timestamps are nondecreasing (the stream clock is monotone), so the
    window bounds of any query are two binary searches and the answer is
    one tree range query.  Queries at or after the newest recorded time
    are exact even across compactions: a pruned release was older than
    ``latest - W`` when pruned and time only moves forward, so it could
    never re-enter a window.
    """

    __slots__ = ("times", "tree", "lifetime", "_policy", "_k", "_base")

    #: Below this many stored releases, compaction isn't worth the rebuild.
    COMPACT_MIN = 64

    def __init__(self, policy: HorizonPolicy) -> None:
        self._policy = policy
        self.times: list[float] = []
        self.tree = IntervalTree()
        self.lifetime = 0.0
        self._k = (
            0.0
            if policy.decay is None
            else math.log(1.0 / policy.decay) / policy.window_seconds
        )
        self._base = 0.0

    def record(self, t: float, eps: float) -> None:
        if self.times and t < self.times[-1] - 1e-9:
            raise ConfigurationError(
                f"release at {t} is before the last recorded release "
                f"at {self.times[-1]}; stream time is monotone"
            )
        if self.times and t < self.times[-1]:
            t = self.times[-1]  # clamp sub-tolerance backsteps: keep sorted
        if self._k and self._k * (t - self._base) > _DECAY_REBASE_EXPONENT:
            self._compact(t)
        scaled = (
            eps if not self._k else eps * math.exp(self._k * (t - self._base))
        )
        self.times.append(t)
        self.tree.append(eps, scaled)
        self.lifetime += eps
        if len(self.times) >= self.COMPACT_MIN:
            live_from = bisect_right(self.times, t - self._policy.window_seconds)
            if 2 * live_from > len(self.times):
                self._compact(t)

    def _compact(self, now: float) -> None:
        """Rebuild from the live suffix; rebase the decay scaling to ``now``."""
        keep_from = bisect_right(self.times, now - self._policy.window_seconds)
        live_times = self.times[keep_from:]
        old_tree = self.tree
        tree = IntervalTree(max(len(live_times), 1))
        self._base = now
        for offset, t_e in enumerate(live_times):
            eps = old_tree.leaf(keep_from + offset)
            scaled = (
                eps if not self._k else eps * math.exp(self._k * (t_e - now))
            )
            tree.append(eps, scaled)
        self.times = live_times
        self.tree = tree

    def spend(self, t: float) -> float:
        """The policy's in-window spend at query time ``t``."""
        window = self._policy.window_seconds
        lo = bisect_right(self.times, t - window)
        hi = bisect_right(self.times, t)
        if hi <= lo:
            return 0.0
        if self._policy.composition == "tree":
            levels = math.floor(math.log2(hi - lo)) + 1.0
            return self.tree.range_max(lo, hi) * levels
        total = self.tree.range_sum(lo, hi)
        if self._k:
            total *= math.exp(-self._k * (t - self._base))
        return total

    def __len__(self) -> int:
        return len(self.times)


class WindowAccountant:
    """Per-worker sliding-window budget accounting under one policy.

    The clock is fed by :meth:`observe` (the tracker calls it at every
    flush); queries default to the observed high-water mark, so callers
    that already pass time through the stack don't have to thread it into
    every ``remaining`` check.  An explicit ``t`` must be at or after the
    newest recorded release for an exact answer (earlier queries may miss
    compacted history — the stream never asks them).
    """

    windowed = True

    def __init__(self, policy: HorizonPolicy):
        if not isinstance(policy, HorizonPolicy):
            raise ConfigurationError(
                f"policy must be a HorizonPolicy, got {type(policy).__name__}"
            )
        self.policy = policy
        self._series: dict[WorkerId, _ReleaseSeries] = {}
        self._capacity: dict[WorkerId, float] = {}
        self._total = 0.0
        self._now = 0.0

    # -- clock -------------------------------------------------------------

    def observe(self, t: float) -> None:
        """Advance the accountant's clock (monotone high-water mark)."""
        if math.isfinite(t) and t > self._now:
            self._now = t

    @property
    def now(self) -> float:
        return self._now

    # -- recording ---------------------------------------------------------

    def register(self, worker_id: WorkerId, capacity: float) -> None:
        """Declare a worker's cap — reinterpreted *per window* here."""
        self._capacity[worker_id] = _validate_capacity(worker_id, capacity)

    def record(self, worker_id: WorkerId, eps: float, t: float | None = None) -> None:
        """Record one release of ``eps`` at ``t`` (default: the clock)."""
        if not eps > 0:
            raise ConfigurationError(
                f"published budget must be positive, got {eps}"
            )
        if t is None:
            t = self._now
        else:
            self.observe(t)
        series = self._series.get(worker_id)
        if series is None:
            series = self._series[worker_id] = _ReleaseSeries(self.policy)
        series.record(t, eps)
        self._total += eps

    # -- queries -----------------------------------------------------------

    def capacity(self, worker_id: WorkerId) -> float:
        """The effective per-window cap (policy cap ∧ registered cap)."""
        registered = self._capacity.get(worker_id, math.inf)
        policy_cap = (
            math.inf if self.policy.window_budget is None else self.policy.window_budget
        )
        return min(registered, policy_cap)

    def spend_in_window(self, worker_id: WorkerId, t: float | None = None) -> float:
        """The worker's composed spend in the window ending at ``t``."""
        series = self._series.get(worker_id)
        if series is None:
            return 0.0
        return series.spend(self._now if t is None else t)

    def lifetime_spend(self, worker_id: WorkerId) -> float:
        """Total budget the worker has ever published (the audit total)."""
        series = self._series.get(worker_id)
        return 0.0 if series is None else series.lifetime

    def remaining(self, worker_id: WorkerId, t: float | None = None) -> float:
        """Budget the worker may still publish in the current window."""
        return self.capacity(worker_id) - self.spend_in_window(worker_id, t)

    def total_spend(self) -> float:
        """Lifetime total across all workers (monotone over the stream)."""
        return self._total

    def total_in_window(self, t: float | None = None) -> float:
        """Sum of every worker's in-window spend — the tenant-level gauge."""
        when = self._now if t is None else t
        return sum(series.spend(when) for series in self._series.values())

    def release_count(self, worker_id: WorkerId) -> int:
        """Releases currently *stored* for a worker (post-compaction)."""
        series = self._series.get(worker_id)
        return 0 if series is None else len(series)


class GlobalAccountant:
    """Today's fixed-budget semantics behind the accountant interface.

    Deliberately replicates the pre-horizon tracker's float accumulation
    — one ``dict.get`` add per event, one running total — in the same
    order, so every default-path stream remains *bit*-identical: the
    cache fingerprints (tuples of ``remaining``), the
    ``cumulative_privacy_spend`` series, and the shed decisions all
    reproduce exactly.  Windowed queries degrade to lifetime ones: the
    "window" of a global guarantee is the whole shift.
    """

    windowed = False

    def __init__(self) -> None:
        self._capacity: dict[WorkerId, float] = {}
        self._spent: dict[WorkerId, float] = {}
        self._total = 0.0

    def observe(self, t: float) -> None:
        """No clock: a global guarantee does not age."""

    def register(self, worker_id: WorkerId, capacity: float) -> None:
        self._capacity[worker_id] = _validate_capacity(worker_id, capacity)

    def record(self, worker_id: WorkerId, eps: float, t: float | None = None) -> None:
        self._spent[worker_id] = self._spent.get(worker_id, 0.0) + eps
        self._total += eps

    def capacity(self, worker_id: WorkerId) -> float:
        return self._capacity.get(worker_id, math.inf)

    def spend_in_window(self, worker_id: WorkerId, t: float | None = None) -> float:
        return self._spent.get(worker_id, 0.0)

    def lifetime_spend(self, worker_id: WorkerId) -> float:
        return self._spent.get(worker_id, 0.0)

    def remaining(self, worker_id: WorkerId, t: float | None = None) -> float:
        return self.capacity(worker_id) - self._spent.get(worker_id, 0.0)

    def total_spend(self) -> float:
        return self._total

    def total_in_window(self, t: float | None = None) -> float:
        return self._total


#: The duck-typed accountant interface both implementations satisfy.
BudgetAccountant = Union[GlobalAccountant, WindowAccountant]


def naive_window_spend(
    events: Iterable[tuple[float, float]], t: float, policy: HorizonPolicy
) -> float:
    """O(n) reference in-window spend over a full ``(time, eps)`` list.

    The semantics the accountant must match (up to float rounding — the
    tree sums in dyadic order, this sums left to right): releases with
    ``t - W < t_e <= t`` compose under the policy's rule.  The property
    tests compare :meth:`WindowAccountant.spend_in_window` against this
    on random schedules; it is deliberately too slow for the hot path.
    """
    window = policy.window_seconds
    live = [(t_e, eps) for t_e, eps in events if t - window < t_e <= t]
    if not live:
        return 0.0
    if policy.composition == "tree":
        levels = math.floor(math.log2(len(live))) + 1.0
        return max(eps for _, eps in live) * levels
    if policy.decay is None:
        return sum(eps for _, eps in live)
    return sum(
        eps * policy.decay ** ((t - t_e) / window) for t_e, eps in live
    )
