"""Local-DP accounting for published distance releases.

Theorems V.2 and VI.4 state that PUCE and PGT give each worker ``w_j``
``(sum_{t_i in R_j} b_ij . eps_ij . r_j)``-local differential privacy: the
total leaked budget is the sum of all *published* per-proposal budgets,
scaled by the service radius (the sensitivity of a distance query inside
the service area).

:class:`PrivacyLedger` is the audit trail: solvers record every publish,
and the ledger exposes the realised spend and the theorem's LDP bound.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Iterator

__all__ = ["PairSpend", "PrivacyLedger"]

WorkerId = Hashable
TaskId = Hashable


@dataclass(frozen=True, slots=True)
class PairSpend:
    """Budgets a worker has published toward one task, in publish order."""

    worker_id: WorkerId
    task_id: TaskId
    epsilons: tuple[float, ...]

    @property
    def total(self) -> float:
        """The pair's spent budget ``b_ij . eps_ij``."""
        return sum(self.epsilons)

    @property
    def proposals(self) -> int:
        """How many proposals have been published for this pair."""
        return len(self.epsilons)


@dataclass
class PrivacyLedger:
    """Append-only record of every published (distance, budget) release."""

    _spends: dict[WorkerId, dict[TaskId, list[float]]] = field(
        default_factory=lambda: defaultdict(dict)
    )
    _events: list[tuple[WorkerId, TaskId, float]] = field(default_factory=list)

    def record(self, worker_id: WorkerId, task_id: TaskId, epsilon: float) -> None:
        """Record one published proposal of ``worker_id`` toward ``task_id``."""
        if not epsilon > 0:
            raise ConfigurationError(f"published budget must be positive, got {epsilon}")
        self._spends[worker_id].setdefault(task_id, []).append(float(epsilon))
        self._events.append((worker_id, task_id, float(epsilon)))

    # -- queries -----------------------------------------------------------

    def pair_spend(self, worker_id: WorkerId, task_id: TaskId) -> PairSpend:
        """Spend of one worker-task pair (empty if never published)."""
        eps = self._spends.get(worker_id, {}).get(task_id, [])
        return PairSpend(worker_id, task_id, tuple(eps))

    def worker_spend(self, worker_id: WorkerId) -> float:
        """Total budget ``sum_i b_ij . eps_ij`` published by a worker."""
        return sum(sum(eps) for eps in self._spends.get(worker_id, {}).values())

    def worker_proposals(self, worker_id: WorkerId) -> int:
        """Total number of published proposals by a worker."""
        return sum(len(eps) for eps in self._spends.get(worker_id, {}).values())

    def worker_ldp_bound(self, worker_id: WorkerId, radius: float) -> float:
        """The Theorem V.2 / VI.4 guarantee for one worker.

        ``radius`` is the worker's service radius ``r_j`` — the sensitivity
        of each distance release.  The bound is
        ``sum_{t_i} b_ij . eps_ij . r_j``.
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        return self.worker_spend(worker_id) * radius

    def total_spend(self) -> float:
        """Grand total of published budget across all workers."""
        return sum(self.worker_spend(w) for w in self._spends)

    def workers(self) -> list[WorkerId]:
        """Workers with at least one published proposal."""
        return [w for w, tasks in self._spends.items() if tasks]

    def events(self) -> Iterator[tuple[WorkerId, TaskId, float]]:
        """All publish events in chronological order."""
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def merge(self, other: "PrivacyLedger") -> "PrivacyLedger":
        """A new ledger containing this ledger's events then ``other``'s.

        Used by the batch runner to aggregate per-batch ledgers into one
        experiment-level audit trail.
        """
        merged = PrivacyLedger()
        for worker_id, task_id, eps in self._events:
            merged.record(worker_id, task_id, eps)
        for worker_id, task_id, eps in other._events:
            merged.record(worker_id, task_id, eps)
        return merged
