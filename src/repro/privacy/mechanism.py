"""The Laplace mechanism (Definition 11 of the paper).

Workers perturb each published worker-task distance with Laplace noise of
rate ``epsilon`` (scale ``sensitivity / epsilon``).  In the paper the noise
rate *is* the per-proposal budget and the distance sensitivity within a
service area of radius ``r_j`` is ``r_j``; the realised local-DP guarantee
``(sum b.eps.r_j)`` is tracked separately by
:class:`repro.privacy.accountant.PrivacyLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.privacy.laplace import sample_laplace

__all__ = ["LaplaceMechanism"]


@dataclass(frozen=True, slots=True)
class LaplaceMechanism:
    """Additive Laplace noise with a fixed query sensitivity.

    Parameters
    ----------
    sensitivity:
        The l1-sensitivity of the published quantity.  The paper's distance
        releases use ``sensitivity=1`` (budgets are interpreted per unit
        distance); location-level mechanisms pass the diameter.
    """

    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if not self.sensitivity > 0:
            raise ConfigurationError(f"sensitivity must be positive, got {self.sensitivity}")

    def noise_rate(self, epsilon: float) -> float:
        """The Laplace rate used for privacy budget ``epsilon``."""
        if not epsilon > 0:
            raise ConfigurationError(f"privacy budget must be positive, got {epsilon}")
        return epsilon / self.sensitivity

    def perturb(self, value: float, epsilon: float, rng: np.random.Generator) -> float:
        """Release ``value`` under budget ``epsilon``."""
        return float(value + sample_laplace(rng, self.noise_rate(epsilon)))

    def perturb_vector(
        self, values: np.ndarray, epsilon: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Release a vector, adding i.i.d. noise at rate ``epsilon`` per entry.

        Matches Definition 11: each coordinate receives an independent
        ``Lap(sensitivity/epsilon)`` draw.
        """
        values = np.asarray(values, dtype=float)
        noise = sample_laplace(rng, self.noise_rate(epsilon), size=values.shape)
        return values + noise
