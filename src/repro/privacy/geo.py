"""Planar Laplace mechanism (geo-indistinguishability).

The related work the paper positions against (To et al., Andres et al.)
obfuscates *locations* rather than distances.  We provide the standard
planar Laplace mechanism as an optional substrate: the angle is uniform and
the radius follows the Gamma(2, 1/eps) distribution, giving density
``(eps^2 / 2 pi) * exp(-eps * ||z - x||)`` and hence eps-geo-
indistinguishability.

It is exercised by the location-privacy example and lets downstream users
compare distance-release schemes (this paper) against location-release
schemes on identical workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.spatial.geometry import Point

__all__ = ["PlanarLaplaceMechanism"]


@dataclass(frozen=True, slots=True)
class PlanarLaplaceMechanism:
    """eps-geo-indistinguishable location perturbation."""

    epsilon: float

    def __post_init__(self) -> None:
        if not self.epsilon > 0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")

    def perturb(self, location: tuple[float, float], rng: np.random.Generator) -> Point:
        """Release an obfuscated copy of ``location``.

        The displacement radius ``R`` has density ``eps^2 r e^{-eps r}``
        (Gamma with shape 2 and scale ``1/eps``); the direction is uniform.
        """
        theta = rng.uniform(0.0, 2.0 * math.pi)
        radius = rng.gamma(shape=2.0, scale=1.0 / self.epsilon)
        return Point(
            location[0] + radius * math.cos(theta),
            location[1] + radius * math.sin(theta),
        )

    def expected_error(self) -> float:
        """Mean displacement ``E[R] = 2 / eps``."""
        return 2.0 / self.epsilon

    def error_quantile(self, alpha: float) -> float:
        """Radius containing probability ``alpha`` of the displacement.

        Solves ``1 - e^{-eps r}(1 + eps r) = alpha`` by bisection; useful
        for sizing geocast regions as in the related-work framework.
        """
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        lo, hi = 0.0, 1.0
        cdf = lambda r: 1.0 - math.exp(-self.epsilon * r) * (1.0 + self.epsilon * r)
        while cdf(hi) < alpha:
            hi *= 2.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if cdf(mid) < alpha:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)
