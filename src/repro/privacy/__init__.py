"""Differential-privacy substrate.

The paper's mechanisms publish worker-task distances perturbed with Laplace
noise whose *rate* is the privacy budget ``epsilon`` (density
``(eps/2) * exp(-eps * |x|)``, i.e. scale ``1/eps``).  This subpackage
implements:

* :mod:`repro.privacy.laplace`    -- the Laplace distribution and the exact
  distribution of the *difference* of two independent Laplace variables
  (the closed form behind the Probability Compare Function),
* :mod:`repro.privacy.mechanism`  -- the Laplace mechanism (Definition 11),
* :mod:`repro.privacy.accountant` -- a local-DP ledger realising the
  ``(sum_i b_ij . eps_ij . r_j)``-LDP bound of Theorems V.2 / VI.4,
* :mod:`repro.privacy.geo`        -- planar Laplace
  (geo-indistinguishability), the location-level mechanism used by the
  related work the paper builds on,
* :mod:`repro.privacy.horizon`    -- infinite-horizon accounting: the
  sliding-window accountant (binary-interval tree over timestamped
  releases) and the default fixed-budget global accountant.
"""

from repro.privacy.accountant import PairSpend, PrivacyLedger
from repro.privacy.attack import (
    AttackRecord,
    LocationEstimate,
    TrilaterationAttack,
    attack_assignment,
)
from repro.privacy.geo import PlanarLaplaceMechanism
from repro.privacy.horizon import (
    GlobalAccountant,
    HorizonPolicy,
    WindowAccountant,
    naive_window_spend,
)
from repro.privacy.laplace import (
    LaplaceDifference,
    laplace_cdf,
    laplace_pdf,
    laplace_sf,
    sample_laplace,
)
from repro.privacy.mechanism import LaplaceMechanism

__all__ = [
    "laplace_pdf",
    "laplace_cdf",
    "laplace_sf",
    "sample_laplace",
    "LaplaceDifference",
    "LaplaceMechanism",
    "PrivacyLedger",
    "PairSpend",
    "HorizonPolicy",
    "WindowAccountant",
    "GlobalAccountant",
    "naive_window_spend",
    "PlanarLaplaceMechanism",
    "TrilaterationAttack",
    "LocationEstimate",
    "AttackRecord",
    "attack_assignment",
]
