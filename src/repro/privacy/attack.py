"""Trilateration attack on published distance releases.

The paper's conclusion flags the residual risk its mechanisms leave open:
"if the service area of a worker is small enough and the quantity of
tasks in this area is large enough, attackers can locate the worker's
position through trilateration", because many effective obfuscated
distances to *known* task locations outline the worker's position.

This module implements that attacker so the risk can be measured.
:class:`TrilaterationAttack` consumes only world-readable state — the
release board an :class:`~repro.core.result.AssignmentResult` carries —
and produces a location estimate per worker by budget-weighted non-linear
least squares (Gauss-Newton on the range residuals; higher-budget
releases are more accurate, hence heavier).

:func:`attack_assignment` runs the attacker over every worker of a solved
run and reports the localisation errors — the quantitative form of the
paper's warning, exercised by ``benchmarks/bench_attack_surface.py`` and
the ``location_privacy_attack`` example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, InvalidInstanceError
from repro.spatial.geometry import Point, euclidean

if TYPE_CHECKING:  # runtime import is deferred to break the package cycle
    from repro.core.result import AssignmentResult

__all__ = ["LocationEstimate", "AttackRecord", "TrilaterationAttack", "attack_assignment"]


@dataclass(frozen=True, slots=True)
class LocationEstimate:
    """The attacker's output for one worker."""

    location: Point
    num_anchors: int
    residual: float

    def error_from(self, true_location: tuple[float, float]) -> float:
        """Localisation error against the (secret) ground truth."""
        return euclidean(self.location, true_location)


@dataclass(frozen=True, slots=True)
class AttackRecord:
    """One attacked worker: leak size, spend, and achieved error."""

    worker_id: int
    anchors: int
    spend: float
    error: float
    radius: float

    @property
    def localised_within_radius(self) -> bool:
        """Whether the estimate landed inside the worker's service radius.

        The service area is the paper's unit of location privacy: an error
        below ``r_j`` means the releases no longer hide the worker within
        his own declared area.
        """
        return self.error <= self.radius


class TrilaterationAttack:
    """Budget-weighted least-squares range localisation."""

    def __init__(self, max_iterations: int = 50, tolerance: float = 1e-9):
        if max_iterations < 1:
            raise ConfigurationError(f"max_iterations must be >= 1, got {max_iterations}")
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def estimate(
        self,
        anchors: list[tuple[float, float]],
        distances: list[float],
        weights: list[float] | None = None,
    ) -> LocationEstimate:
        """Estimate the source location of the published distances.

        Parameters
        ----------
        anchors:
            Known task locations the distances refer to.
        distances:
            Published (effective obfuscated) distances; negative releases
            are clipped to zero — "very close" is the only consistent
            reading.
        weights:
            Optional positive per-release weights; the natural choice is
            the effective budget (Laplace precision grows with it).

        Raises
        ------
        InvalidInstanceError
            On mismatched lengths, non-positive weights, or fewer than
            two anchors (one range constrains to a circle, not a point).
        """
        if len(anchors) != len(distances):
            raise InvalidInstanceError(f"{len(anchors)} anchors vs {len(distances)} distances")
        if len(anchors) < 2:
            raise InvalidInstanceError("trilateration needs at least two anchors")
        points = np.asarray(anchors, dtype=float)
        ranges = np.maximum(np.asarray(distances, dtype=float), 0.0)
        if weights is None:
            w = np.ones(len(anchors))
        else:
            if len(weights) != len(anchors):
                raise InvalidInstanceError(f"{len(weights)} weights vs {len(anchors)} anchors")
            w = np.asarray(weights, dtype=float)
            if (w <= 0).any():
                raise InvalidInstanceError("weights must be positive")

        position = points.mean(axis=0)  # centroid start: robust at area scale
        for _ in range(self.max_iterations):
            deltas = position - points
            current = np.maximum(
                np.sqrt(np.einsum("ij,ij->i", deltas, deltas)), 1e-12
            )
            residuals = current - ranges
            jacobian = deltas / current[:, None]
            weighted = jacobian * w[:, None]
            normal = weighted.T @ jacobian
            # Levenberg damping keeps the step defined for collinear
            # anchors (rank-1 normal matrix) without biasing the
            # well-conditioned case.
            damping = 1e-9 * (1.0 + float(np.trace(normal)))
            step = np.linalg.solve(
                normal + damping * np.eye(2), weighted.T @ residuals
            )
            position = position - step
            if float(np.abs(step).max()) < self.tolerance:
                break

        deltas = position - points
        final = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        residual = float(np.sqrt(np.average((final - ranges) ** 2, weights=w)))
        return LocationEstimate(
            Point(float(position[0]), float(position[1])),
            num_anchors=len(anchors),
            residual=residual,
        )


def attack_assignment(
    result: "AssignmentResult", min_anchors: int = 2
) -> list[AttackRecord]:
    """Attack every worker with >= ``min_anchors`` published pairs.

    Consumes only the run's public state: the release board's effective
    obfuscated distances and budgets, and the known task locations.  The
    workers' true locations are used solely to *score* the attack.

    Returns records sorted by worker id.
    """
    instance = result.instance
    attack = TrilaterationAttack()
    task_by_id = {t.id: t for t in instance.tasks}

    leaks: dict[int, list[tuple[tuple[float, float], float, float]]] = {}
    for (task_id, worker_id), releases in result.release_board.items():
        pair = releases.effective_pair()
        leaks.setdefault(worker_id, []).append(
            (tuple(task_by_id[task_id].location), pair.distance, pair.epsilon)
        )

    records = []
    for worker in instance.workers:
        leaked = leaks.get(worker.id, [])
        if len(leaked) < min_anchors:
            continue
        anchors = [entry[0] for entry in leaked]
        distances = [entry[1] for entry in leaked]
        weights = [entry[2] for entry in leaked]
        estimate = attack.estimate(anchors, distances, weights)
        records.append(
            AttackRecord(
                worker_id=worker.id,
                anchors=len(leaked),
                spend=result.ledger.worker_spend(worker.id),
                error=estimate.error_from(worker.location),
                radius=worker.radius,
            )
        )
    return records
