"""Synthetic workload generators (Section VII-A).

The paper generates 2-D uniform and 2-D normal populations (300k tasks,
900k workers) and processes them in batches of at most 1000 tasks.  The
generators here produce *one batch at a time* at paper-faithful spatial
density: when you ask for fewer (or more) tasks than the paper's 1000 per
batch, all spatial scales shrink (or grow) by ``sqrt(num_tasks / 1000)``
so that the number of tasks inside a worker's service circle — the
statistic that drives every figure — is preserved.

* :class:`UniformGenerator` — uniform over a square frame (paper: 100x100
  for 1000-task batches).
* :class:`NormalGenerator` — isotropic Gaussian (paper: mean 0, variance
  150), giving the dense core where workers see many tasks.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.core.budgets import BudgetSampler
from repro.core.utility import UtilityModel
from repro.errors import DatasetError
from repro.datasets.workload import Task, Worker
from repro.spatial.geometry import Point
from repro.utils.rng import ensure_rng

if TYPE_CHECKING:  # runtime import is deferred to break the package cycle
    from repro.simulation.instance import ProblemInstance

__all__ = ["SyntheticGenerator", "UniformGenerator", "NormalGenerator"]

#: The paper's batch size; spatial scales are calibrated against it.
PAPER_BATCH_TASKS = 1000


class SyntheticGenerator(ABC):
    """Base class: location sampling + instance assembly.

    Parameters
    ----------
    num_tasks, num_workers:
        Batch population.  The paper's default worker-task ratio is 2.
    seed:
        Base seed; every :meth:`instance` call with the same ``batch``
        index reproduces the same batch.
    """

    def __init__(self, num_tasks: int, num_workers: int, seed: int | None = 0):
        if num_tasks < 1:
            raise DatasetError(f"num_tasks must be >= 1, got {num_tasks}")
        if num_workers < 1:
            raise DatasetError(f"num_workers must be >= 1, got {num_workers}")
        self.num_tasks = num_tasks
        self.num_workers = num_workers
        self.seed = seed

    @property
    def density_scale(self) -> float:
        """Spatial scale factor preserving paper task density."""
        return math.sqrt(self.num_tasks / PAPER_BATCH_TASKS)

    @abstractmethod
    def _sample_task_points(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``(count, 2)`` task locations."""

    def _sample_worker_points(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``(count, 2)`` worker locations; defaults to the task law."""
        return self._sample_task_points(rng, count)

    # -- location sampling -------------------------------------------------

    def sample_task_locations(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """``(count, 2)`` task locations from this generator's spatial law.

        Public hook for callers that need locations decoupled from batch
        assembly — the streaming layer draws one location per *arrival*
        instead of one batch at a time.
        """
        if count < 0:
            raise DatasetError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.empty((0, 2))
        return self._sample_task_points(rng, count)

    def sample_worker_locations(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """``(count, 2)`` worker locations from this generator's spatial law."""
        if count < 0:
            raise DatasetError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.empty((0, 2))
        return self._sample_worker_points(rng, count)

    # -- assembly ---------------------------------------------------------

    def tasks(
        self,
        task_value: float,
        rng: np.random.Generator,
        value_jitter: float = 0.0,
    ) -> list[Task]:
        """One batch of tasks with (optionally jittered) constant value."""
        if task_value <= 0:
            raise DatasetError(f"task_value must be positive, got {task_value}")
        if value_jitter < 0:
            raise DatasetError(f"value_jitter must be >= 0, got {value_jitter}")
        points = self._sample_task_points(rng, self.num_tasks)
        if value_jitter:
            values = rng.uniform(
                task_value - value_jitter, task_value + value_jitter, self.num_tasks
            )
            values = np.maximum(values, 0.0)
        else:
            values = np.full(self.num_tasks, task_value)
        return [
            Task(id=i, location=Point(float(x), float(y)), value=float(v))
            for i, ((x, y), v) in enumerate(zip(points, values))
        ]

    def workers(self, worker_range: float, rng: np.random.Generator) -> list[Worker]:
        """One batch of workers with a common service radius."""
        if worker_range < 0:
            raise DatasetError(f"worker_range must be >= 0, got {worker_range}")
        points = self._sample_worker_points(rng, self.num_workers)
        return [
            Worker(id=j, location=Point(float(x), float(y)), radius=worker_range)
            for j, (x, y) in enumerate(points)
        ]

    def instance(
        self,
        task_value: float = 4.5,
        worker_range: float = 1.4,
        budget_sampler: BudgetSampler | None = None,
        model: UtilityModel | None = None,
        batch: int = 0,
        value_jitter: float = 0.0,
    ) -> "ProblemInstance":
        """Build one batch instance with Table X defaults.

        ``batch`` selects an independent, reproducible batch: batch ``k``
        of two generators with equal parameters is identical.
        """
        from repro.simulation.instance import ProblemInstance

        rng = ensure_rng(None if self.seed is None else self.seed + 7919 * batch)
        tasks = self.tasks(task_value, rng, value_jitter)
        workers = self.workers(worker_range, rng)
        return ProblemInstance.build(tasks, workers, budget_sampler, model, seed=rng)

    def instances(
        self,
        num_batches: int,
        task_value: float = 4.5,
        worker_range: float = 1.4,
        budget_sampler: BudgetSampler | None = None,
        model: UtilityModel | None = None,
    ) -> list["ProblemInstance"]:
        """``num_batches`` independent batches (the Section VII protocol)."""
        if num_batches < 1:
            raise DatasetError(f"num_batches must be >= 1, got {num_batches}")
        return [
            self.instance(task_value, worker_range, budget_sampler, model, batch=b)
            for b in range(num_batches)
        ]


class UniformGenerator(SyntheticGenerator):
    """2-D uniform batch over a density-calibrated square frame."""

    #: Paper frame edge for a 1000-task batch ("a plane with a range of
    #: 100 x 100").
    PAPER_FRAME = 100.0

    @property
    def frame(self) -> float:
        """Edge length of this generator's (density-scaled) frame."""
        return self.PAPER_FRAME * self.density_scale

    def _sample_task_points(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.uniform(0.0, self.frame, size=(count, 2))


class NormalGenerator(SyntheticGenerator):
    """2-D isotropic Gaussian batch (paper: mean 0, variance 150)."""

    PAPER_VARIANCE = 150.0

    @property
    def std(self) -> float:
        """Per-axis standard deviation after density scaling."""
        return math.sqrt(self.PAPER_VARIANCE) * self.density_scale

    def _sample_task_points(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.normal(0.0, self.std, size=(count, 2))
