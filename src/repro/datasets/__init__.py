"""Workload model and generators (Section VII-A).

* :mod:`repro.datasets.workload`  -- tasks, workers, batches, group cycling,
* :mod:`repro.datasets.synthetic` -- the paper's uniform and normal
  populations at density-preserving scale,
* :mod:`repro.datasets.chengdu`   -- the simulated Didi Chengdu workload
  standing in for the proprietary trace (see DESIGN.md §2).
"""

from repro.datasets.chengdu import ChengduLikeGenerator
from repro.datasets.io import load_tasks, load_workers, save_tasks, save_workers
from repro.datasets.synthetic import NormalGenerator, SyntheticGenerator, UniformGenerator
from repro.datasets.workload import Batch, Task, Worker, WorkerGroupCycle, split_batches

__all__ = [
    "Task",
    "Worker",
    "Batch",
    "split_batches",
    "WorkerGroupCycle",
    "SyntheticGenerator",
    "UniformGenerator",
    "NormalGenerator",
    "ChengduLikeGenerator",
    "save_tasks",
    "load_tasks",
    "save_workers",
    "load_workers",
]
