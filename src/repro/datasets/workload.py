"""Workload model: spatial tasks, spatial workers, batches, worker groups.

Definitions 1-2 of the paper: a task has a location and a value; a worker
has a location and a circular service area of radius ``r_j`` ("worker
range" in the experiments).  Section VII-B's protocol splits a day of
orders into time-window batches of at most 1000 and cycles ten fixed
worker groups across batches; :func:`split_batches` and
:class:`WorkerGroupCycle` implement that protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import DatasetError
from repro.spatial.geometry import Point

__all__ = ["Task", "Worker", "Batch", "split_batches", "WorkerGroupCycle"]


@dataclass(frozen=True, slots=True)
class Task:
    """A spatial task ``t_i`` (Definition 1)."""

    id: int
    location: Point
    value: float
    release_time: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.location, Point):
            object.__setattr__(self, "location", Point(*self.location))
        if self.value < 0:
            raise DatasetError(f"task {self.id} has negative value {self.value}")


@dataclass(frozen=True, slots=True)
class Worker:
    """A spatial worker ``w_j`` with service radius ``r_j`` (Definition 2)."""

    id: int
    location: Point
    radius: float

    def __post_init__(self) -> None:
        if not isinstance(self.location, Point):
            object.__setattr__(self, "location", Point(*self.location))
        if self.radius < 0:
            raise DatasetError(f"worker {self.id} has negative radius {self.radius}")

    def can_reach(self, task: Task) -> bool:
        """Whether ``task`` lies in this worker's service area ``A_j``."""
        return self.location.distance_to(task.location) <= self.radius


@dataclass(frozen=True)
class Batch:
    """One time window: the tasks released in it plus the on-duty workers."""

    index: int
    tasks: tuple[Task, ...]
    workers: tuple[Worker, ...]

    @property
    def worker_task_ratio(self) -> float:
        """``|S_W| / |S_T|`` — the paper's ``pwt``."""
        if not self.tasks:
            raise DatasetError(f"batch {self.index} has no tasks")
        return len(self.workers) / len(self.tasks)


def split_batches(
    tasks: Sequence[Task],
    batch_size: int,
    workers: "WorkerGroupCycle",
) -> list[Batch]:
    """Split ``tasks`` into release-time-ordered batches of ``<= batch_size``.

    Each batch is paired with the next worker group from ``workers``,
    cycling as in Section VII-B ("we use each worker group circularly for
    each batch").
    """
    if batch_size < 1:
        raise DatasetError(f"batch_size must be >= 1, got {batch_size}")
    ordered = sorted(tasks, key=lambda t: (t.release_time, t.id))
    batches: list[Batch] = []
    for start in range(0, len(ordered), batch_size):
        chunk = tuple(ordered[start : start + batch_size])
        batches.append(Batch(len(batches), chunk, workers.next_group()))
    return batches


@dataclass
class WorkerGroupCycle:
    """Fixed worker groups used round-robin across batches."""

    groups: tuple[tuple[Worker, ...], ...]
    _cursor: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not self.groups:
            raise DatasetError("need at least one worker group")
        if any(not g for g in self.groups):
            raise DatasetError("worker groups must be non-empty")

    @classmethod
    def split(cls, workers: Sequence[Worker], num_groups: int) -> "WorkerGroupCycle":
        """Partition ``workers`` into ``num_groups`` contiguous groups.

        Mirrors the paper's real-data protocol (30000 taxis into ten groups
        of 3000).  Workers that do not divide evenly land in the final
        group.
        """
        if num_groups < 1:
            raise DatasetError(f"num_groups must be >= 1, got {num_groups}")
        if len(workers) < num_groups:
            raise DatasetError(
                f"cannot split {len(workers)} workers into {num_groups} groups"
            )
        per = len(workers) // num_groups
        groups: list[tuple[Worker, ...]] = []
        for g in range(num_groups):
            start = g * per
            end = start + per if g < num_groups - 1 else len(workers)
            groups.append(tuple(workers[start:end]))
        return cls(tuple(groups))

    def next_group(self) -> tuple[Worker, ...]:
        """The next group in cyclic order."""
        group = self.groups[self._cursor]
        self._cursor = (self._cursor + 1) % len(self.groups)
        return group

    def __iter__(self) -> Iterator[tuple[Worker, ...]]:
        return iter(self.groups)
