"""Workload persistence: CSV import/export for tasks and workers.

The paper's real experiments read the Didi Chuxing GAIA trace; this module
defines the on-disk format this library consumes so the genuine trace (or
any other workload) can be dropped in when available:

* tasks:   ``id,x,y,value,release_time`` (header required)
* workers: ``id,x,y,radius``

Coordinates are projected kilometres, matching the generators.  Loaders
validate eagerly and raise :class:`~repro.errors.DatasetError` with the
offending line number — silent data corruption in a workload makes every
downstream number wrong.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.datasets.workload import Task, Worker
from repro.errors import DatasetError
from repro.spatial.geometry import Point

__all__ = ["save_tasks", "load_tasks", "save_workers", "load_workers"]

_TASK_FIELDS = ("id", "x", "y", "value", "release_time")
_WORKER_FIELDS = ("id", "x", "y", "radius")


def save_tasks(tasks: Sequence[Task], path: str | Path) -> None:
    """Write tasks as CSV with the canonical header."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_TASK_FIELDS)
        for task in tasks:
            writer.writerow(
                [task.id, task.location.x, task.location.y, task.value, task.release_time]
            )


def save_workers(workers: Sequence[Worker], path: str | Path) -> None:
    """Write workers as CSV with the canonical header."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_WORKER_FIELDS)
        for worker in workers:
            writer.writerow([worker.id, worker.location.x, worker.location.y, worker.radius])


def _read_rows(path: Path, expected_fields: tuple[str, ...]) -> list[dict]:
    if not path.exists():
        raise DatasetError(f"workload file not found: {path}")
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DatasetError(f"{path}: empty file (expected header {expected_fields})")
        missing = set(expected_fields) - set(reader.fieldnames)
        if missing:
            raise DatasetError(
                f"{path}: missing columns {sorted(missing)}; "
                f"expected header {','.join(expected_fields)}"
            )
        return list(reader)


def _parse_float(row: dict, field: str, path: Path, line: int) -> float:
    raw = row[field]
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise DatasetError(
            f"{path}:{line}: column {field!r} is not a number: {raw!r}"
        ) from None


def _parse_int(row: dict, field: str, path: Path, line: int) -> int:
    raw = row[field]
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise DatasetError(
            f"{path}:{line}: column {field!r} is not an integer: {raw!r}"
        ) from None


def load_tasks(path: str | Path) -> list[Task]:
    """Read tasks from CSV.

    Raises
    ------
    DatasetError
        On missing files/columns, malformed numbers, duplicate ids, or
        values the :class:`Task` invariants reject (e.g. negative value).
    """
    path = Path(path)
    tasks: list[Task] = []
    seen: set[int] = set()
    for line, row in enumerate(_read_rows(path, _TASK_FIELDS), start=2):
        task_id = _parse_int(row, "id", path, line)
        if task_id in seen:
            raise DatasetError(f"{path}:{line}: duplicate task id {task_id}")
        seen.add(task_id)
        tasks.append(
            Task(
                id=task_id,
                location=Point(
                    _parse_float(row, "x", path, line),
                    _parse_float(row, "y", path, line),
                ),
                value=_parse_float(row, "value", path, line),
                release_time=_parse_float(row, "release_time", path, line),
            )
        )
    return tasks


def load_workers(path: str | Path) -> list[Worker]:
    """Read workers from CSV (same validation posture as :func:`load_tasks`)."""
    path = Path(path)
    workers: list[Worker] = []
    seen: set[int] = set()
    for line, row in enumerate(_read_rows(path, _WORKER_FIELDS), start=2):
        worker_id = _parse_int(row, "id", path, line)
        if worker_id in seen:
            raise DatasetError(f"{path}:{line}: duplicate worker id {worker_id}")
        seen.add(worker_id)
        workers.append(
            Worker(
                id=worker_id,
                location=Point(
                    _parse_float(row, "x", path, line),
                    _parse_float(row, "y", path, line),
                ),
                radius=_parse_float(row, "radius", path, line),
            )
        )
    return workers
