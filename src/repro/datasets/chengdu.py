"""A simulated Chengdu taxi workload (the paper's real-data substitute).

The paper evaluates on the Didi Chuxing GAIA Chengdu trace (259,347 orders
and 30,000 taxis on 2016-11-18), which is proprietary and unavailable
offline.  :class:`ChengduLikeGenerator` synthesises a workload with the
properties the experiments actually consume (DESIGN.md §2):

* **Order locations** (Figure 3a): a dense anisotropic urban core, order
  mass strung along arterial road segments (the "road network" sparsity
  Section VII-D.2 invokes to explain PGT's weaker chengdu results), and a
  sparse suburban halo.  The frame matches the paper's projected
  kilometre coordinates (x ~ 340-460, y ~ 3340-3440).
* **Taxi locations** (Figure 3b): the same city structure over a wider
  frame, as in the paper's plots.
* **Release times**: a double rush-hour profile over a day, so
  release-time batching produces realistic time windows.

Calibration: at the paper's 1000-order batch size and the default worker
range (1.4 km) a taxi sees ~2-3 orders inside its service circle — well
below the `normal` dataset's dense core — reproducing the density contrast
that drives the chengdu-vs-normal differences in Figures 5-16.  As with
the synthetic generators, spatial scales shrink by ``sqrt(num_tasks/1000)``
when smaller batches are requested, preserving that density.
"""

from __future__ import annotations

import math

import numpy as np

from repro.datasets.synthetic import SyntheticGenerator
from repro.datasets.workload import Task
from repro.errors import DatasetError
from repro.utils.rng import ensure_rng

__all__ = ["ChengduLikeGenerator"]

#: City centre of the paper's projected frame (km).
_CENTER = (400.0, 3390.0)
#: Order frame half-extents (Figure 3a spans ~120 x 100 km).
_ORDER_HALF = (60.0, 50.0)
#: Taxi frame half-extents (Figure 3b spans ~200 x 200 km).
_TAXI_HALF = (100.0, 100.0)


class ChengduLikeGenerator(SyntheticGenerator):
    """Synthetic Chengdu-like ride-hailing batches.

    Parameters
    ----------
    num_tasks, num_workers, seed:
        As in :class:`~repro.datasets.synthetic.SyntheticGenerator`.
    num_roads:
        Arterial segments; the road layout is fixed per generator (drawn
        once from ``seed``) so batches share a road network.
    core_fraction / road_fraction:
        Mixture weights for orders (remainder is the suburban halo).
    """

    #: Urban-core standard deviation (km) at paper batch size.
    PAPER_CORE_STD = (16.0, 12.0)
    #: Gaussian jitter of order locations around their road (km).
    ROAD_JITTER = 0.25

    def __init__(
        self,
        num_tasks: int,
        num_workers: int,
        seed: int | None = 0,
        num_roads: int = 12,
        core_fraction: float = 0.55,
        road_fraction: float = 0.30,
    ):
        super().__init__(num_tasks, num_workers, seed)
        if num_roads < 1:
            raise DatasetError(f"num_roads must be >= 1, got {num_roads}")
        if not 0 <= core_fraction <= 1 or not 0 <= road_fraction <= 1:
            raise DatasetError("mixture fractions must lie in [0, 1]")
        if core_fraction + road_fraction > 1.0 + 1e-9:
            raise DatasetError("core_fraction + road_fraction must be <= 1")
        self.num_roads = num_roads
        self.core_fraction = core_fraction
        self.road_fraction = road_fraction
        self._roads = self._build_roads(ensure_rng(seed if seed is not None else 0))

    def _build_roads(self, rng: np.random.Generator) -> np.ndarray:
        """``(num_roads, 4)`` segments (x0, y0, x1, y1), fixed per generator.

        Each artery starts near the core and runs a long chord outward, so
        arteries cross downtown the way real radial roads do.
        """
        s = self.density_scale
        cx, cy = _CENTER
        starts = rng.normal(0.0, 6.0 * s, size=(self.num_roads, 2)) + (cx, cy)
        angles = rng.uniform(0.0, 2.0 * math.pi, size=self.num_roads)
        lengths = rng.uniform(25.0 * s, 55.0 * s, size=self.num_roads)
        ends = starts + np.stack(
            [lengths * np.cos(angles), lengths * np.sin(angles)], axis=1
        )
        return np.hstack([starts, ends])

    # -- sampling ---------------------------------------------------------

    def _sample_core(self, rng: np.random.Generator, count: int) -> np.ndarray:
        s = self.density_scale
        sx, sy = self.PAPER_CORE_STD
        return rng.normal(0.0, 1.0, size=(count, 2)) * (sx * s, sy * s) + _CENTER

    def _sample_roads(self, rng: np.random.Generator, count: int) -> np.ndarray:
        roads = self._roads[rng.integers(0, self.num_roads, size=count)]
        t = rng.uniform(0.0, 1.0, size=(count, 1))
        points = roads[:, :2] * (1.0 - t) + roads[:, 2:] * t
        return points + rng.normal(0.0, self.ROAD_JITTER, size=(count, 2))

    def _sample_suburbs(
        self, rng: np.random.Generator, count: int, half: tuple[float, float]
    ) -> np.ndarray:
        s = self.density_scale
        cx, cy = _CENTER
        return np.stack(
            [
                rng.uniform(cx - half[0] * s, cx + half[0] * s, size=count),
                rng.uniform(cy - half[1] * s, cy + half[1] * s, size=count),
            ],
            axis=1,
        )

    def _sample_task_points(self, rng: np.random.Generator, count: int) -> np.ndarray:
        n_core = int(round(count * self.core_fraction))
        n_road = int(round(count * self.road_fraction))
        n_sub = max(0, count - n_core - n_road)
        parts = [
            self._sample_core(rng, n_core),
            self._sample_roads(rng, n_road),
            self._sample_suburbs(rng, n_sub, _ORDER_HALF),
        ]
        points = np.vstack([p for p in parts if len(p)])
        return points[rng.permutation(len(points))][:count]

    def _sample_worker_points(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Taxis: a wider core plus a broad uniform background (Fig. 3b)."""
        n_core = int(round(count * 0.6))
        n_back = count - n_core
        s = self.density_scale
        core = rng.normal(0.0, 1.0, size=(n_core, 2)) * (22.0 * s, 18.0 * s) + _CENTER
        back = self._sample_suburbs(rng, n_back, _TAXI_HALF)
        points = np.vstack([core, back])
        return points[rng.permutation(len(points))][:count]

    # -- release times ------------------------------------------------------

    def tasks(self, task_value, rng, value_jitter: float = 0.0):
        """Tasks with rush-hour release times in hours of day [0, 24)."""
        tasks = super().tasks(task_value, rng, value_jitter)
        times = self._sample_release_times(rng, len(tasks))
        return [
            Task(id=t.id, location=t.location, value=t.value, release_time=float(h))
            for t, h in zip(tasks, times)
        ]

    @staticmethod
    def _sample_release_times(rng: np.random.Generator, count: int) -> np.ndarray:
        """Double-peak daily demand: morning/evening rush plus a base load."""
        component = rng.uniform(0.0, 1.0, size=count)
        times = np.where(
            component < 0.35,
            rng.normal(8.5, 1.2, size=count),
            np.where(
                component < 0.75,
                rng.normal(18.0, 1.5, size=count),
                rng.uniform(0.0, 24.0, size=count),
            ),
        )
        return np.mod(times, 24.0)
