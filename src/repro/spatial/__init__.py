"""Spatial substrate: points, metrics, regions, and a grid index.

The paper's workers own circular service areas (Definition 2) and only
propose to tasks inside them.  This subpackage supplies the geometry needed
to materialise those reachability sets efficiently:

* :mod:`repro.spatial.geometry` -- points and distance metrics,
* :mod:`repro.spatial.region`   -- circles and bounding boxes,
* :mod:`repro.spatial.index`    -- a uniform grid index for circular range
  queries over large point sets.
"""

from repro.spatial.geometry import (
    Point,
    euclidean,
    haversine_km,
    pairwise_euclidean,
    squared_euclidean,
)
from repro.spatial.index import GridIndex
from repro.spatial.region import BoundingBox, Circle

__all__ = [
    "Point",
    "euclidean",
    "squared_euclidean",
    "haversine_km",
    "pairwise_euclidean",
    "BoundingBox",
    "Circle",
    "GridIndex",
]
