"""A uniform grid index for circular range queries.

Building the reachability sets ``R_j`` (the tasks inside each worker's
service circle) is the one geometric operation the paper's algorithms
perform at scale: every batch needs ``R_j`` for every worker.  A uniform
grid gives expected O(points-in-range) query time for the near-uniform and
clustered densities produced by the bundled generators, with no
dependencies beyond numpy.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError, InvalidInstanceError
import numpy as np

__all__ = ["GridIndex", "grid_cell_labels"]


def grid_cell_labels(
    points: Sequence[tuple[float, float]] | np.ndarray,
    cell_size: float | None = None,
) -> np.ndarray:
    """Dense integer grid-cell label per point, without building buckets.

    The vectorized companion of :meth:`GridIndex.cell_labels` for callers
    that only need the cell partition (the stream layer's shard cut):
    same heuristic cell size, same ``(col, row)``-ranked labels, but no
    per-point Python bucket loop.
    """
    pts = np.asarray(points, dtype=float)
    if pts.size == 0:
        return np.zeros(0, dtype=np.int64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise InvalidInstanceError(f"expected an (n, 2) point array, got shape {pts.shape}")
    if cell_size is None:
        cell_size = GridIndex._auto_cell_size(pts)
    if cell_size <= 0:
        raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
    cols = np.floor((pts[:, 0] - pts[:, 0].min()) / cell_size).astype(np.int64)
    rows = np.floor((pts[:, 1] - pts[:, 1].min()) / cell_size).astype(np.int64)
    # One scalar key per cell ((col, row) lexicographic rank): 1-D unique
    # is much faster than the structured row-wise variant.
    _, labels = np.unique(cols * (rows.max() + 1) + rows, return_inverse=True)
    return labels.astype(np.int64).reshape(-1)


class GridIndex:
    """Uniform grid over a static 2-D point set.

    Parameters
    ----------
    points:
        Sequence or array of ``(x, y)`` pairs.  The index keeps positional
        indices into this sequence; queries return those indices.
    cell_size:
        Edge length of a grid cell.  When omitted, a heuristic targeting an
        average of ~2 points per cell is used, which keeps both build time
        and query fan-out low for the workloads in this repository.
    """

    def __init__(self, points: Sequence[tuple[float, float]], cell_size: float | None = None):
        pts = np.asarray(points, dtype=float)
        if pts.size == 0:
            pts = pts.reshape(0, 2)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise InvalidInstanceError(f"expected an (n, 2) point array, got shape {pts.shape}")
        self._points = pts
        self._n = pts.shape[0]

        if cell_size is None:
            cell_size = self._auto_cell_size(pts)
        if cell_size <= 0:
            raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
        self._cell = float(cell_size)

        if self._n:
            self._min_x = float(pts[:, 0].min())
            self._min_y = float(pts[:, 1].min())
        else:
            self._min_x = self._min_y = 0.0

        self._buckets: dict[tuple[int, int], list[int]] = {}
        self._max_col = 0
        self._max_row = 0
        if self._n:
            cols = np.floor((pts[:, 0] - self._min_x) / self._cell).astype(np.int64)
            rows = np.floor((pts[:, 1] - self._min_y) / self._cell).astype(np.int64)
            self._max_col = int(cols.max())
            self._max_row = int(rows.max())
            for idx, key in enumerate(zip(cols.tolist(), rows.tolist())):
                self._buckets.setdefault(key, []).append(idx)

    @staticmethod
    def _auto_cell_size(pts: np.ndarray) -> float:
        if pts.shape[0] == 0:
            return 1.0
        width = float(pts[:, 0].max() - pts[:, 0].min())
        height = float(pts[:, 1].max() - pts[:, 1].min())
        span = max(width, height)
        if span <= 0.0:
            return 1.0
        # ~n/2 cells along the larger axis caps the average occupancy near 2.
        cells = max(1, int(math.sqrt(pts.shape[0] / 2.0)))
        return span / cells

    def __len__(self) -> int:
        return self._n

    @property
    def cell_size(self) -> float:
        return self._cell

    @property
    def points(self) -> np.ndarray:
        """The indexed points (read-only view)."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Cell coordinates of a point, saturated to just beyond the grid.

        A denormal cell size (near-coincident point sets) can push the
        raw ratio to +/-inf; saturating to one cell outside the occupied
        range keeps ``int()`` safe and is lossless for the callers,
        which clamp to the occupied range anyway.
        """
        limit = float(max(self._max_col, self._max_row) + 1)
        col = min(max((x - self._min_x) / self._cell, -1.0), limit)
        row = min(max((y - self._min_y) / self._cell, -1.0), limit)
        return (int(math.floor(col)), int(math.floor(row)))

    def cell_labels(self) -> np.ndarray:
        """Dense integer grid-cell label per indexed point.

        Points sharing a grid cell share a label; labels are ranked by
        ``(col, row)`` so the mapping is deterministic for a given point
        set and cell size.  This is the spatial coarsening the stream
        layer's shard cut is built on: a cell is the smallest unit that
        may move between shards.  (:func:`grid_cell_labels` computes the
        same partition without building an index.)
        """
        return grid_cell_labels(self._points, self._cell)

    def query_circle(self, center: tuple[float, float], radius: float) -> list[int]:
        """Indices of all points within ``radius`` of ``center`` (inclusive).

        Results are sorted ascending so callers get deterministic
        reachability sets independent of bucket iteration order.
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        if self._n == 0:
            return []
        cx, cy = float(center[0]), float(center[1])
        lo_col, lo_row = self._cell_of(cx - radius, cy - radius)
        hi_col, hi_row = self._cell_of(cx + radius, cy + radius)
        # Clamp to the occupied grid: cells outside hold no points, and
        # without the clamp a near-degenerate point spread (denormal
        # span -> denormal cell size) turns ``radius / cell`` into ~1e308
        # candidate cells and the scan below into an effective hang.
        lo_col, hi_col = max(lo_col, 0), min(hi_col, self._max_col)
        lo_row, hi_row = max(lo_row, 0), min(hi_row, self._max_row)
        hits: list[int] = []
        pts = self._points
        for col in range(lo_col, hi_col + 1):
            for row in range(lo_row, hi_row + 1):
                bucket = self._buckets.get((col, row))
                if not bucket:
                    continue
                for idx in bucket:
                    # hypot, not squared distance: squares of denormal
                    # offsets underflow to 0.0 and would disagree with
                    # the library-wide euclidean() radius predicate.
                    if math.hypot(pts[idx, 0] - cx, pts[idx, 1] - cy) <= radius:
                        hits.append(idx)
        hits.sort()
        return hits

    def query_circle_brute(self, center: tuple[float, float], radius: float) -> list[int]:
        """Reference implementation of :meth:`query_circle` (O(n) scan).

        Used by the test-suite to validate the grid and by callers with
        tiny point sets where building buckets is not worthwhile.
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        if self._n == 0:
            return []
        cx, cy = float(center[0]), float(center[1])
        # Same math.hypot predicate as query_circle — np.hypot can differ
        # in the last ulp, which would let the two methods disagree on a
        # point sitting exactly on the radius.
        return [
            idx
            for idx in range(self._n)
            if math.hypot(self._points[idx, 0] - cx, self._points[idx, 1] - cy)
            <= radius
        ]

    def nearest(self, center: tuple[float, float]) -> int:
        """Index of the point closest to ``center`` (ties: lowest index)."""
        if self._n == 0:
            raise InvalidInstanceError("nearest() on an empty index")
        diff = self._points - np.asarray(center, dtype=float)
        d2 = np.einsum("ij,ij->i", diff, diff)
        return int(np.argmin(d2))
