"""Planar regions: axis-aligned bounding boxes and circles.

Workers' service areas (Definition 2 of the paper) are circles; the grid
index prunes candidate cells with bounding boxes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError, InvalidInstanceError
from repro.spatial.geometry import Point, squared_euclidean

__all__ = ["BoundingBox", "Circle"]


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """Axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise InvalidInstanceError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_points(cls, points: Iterable[tuple[float, float]]) -> "BoundingBox":
        """Smallest box containing ``points`` (which must be non-empty)."""
        xs: list[float] = []
        ys: list[float] = []
        for x, y in points:
            xs.append(x)
            ys.append(y)
        if not xs:
            raise InvalidInstanceError("cannot build a bounding box from zero points")
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: tuple[float, float]) -> bool:
        """Whether ``point`` lies inside (boundary inclusive)."""
        x, y = point
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes share any point (boundary inclusive)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """A copy grown by ``margin`` on every side."""
        if margin < 0:
            raise ConfigurationError(f"margin must be non-negative, got {margin}")
        return BoundingBox(
            self.min_x - margin, self.min_y - margin, self.max_x + margin, self.max_y + margin
        )


@dataclass(frozen=True, slots=True)
class Circle:
    """A disc: the worker service area of Definition 2."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {self.radius}")
        if not isinstance(self.center, Point):
            object.__setattr__(self, "center", Point(*self.center))

    @property
    def area(self) -> float:
        return math.pi * self.radius * self.radius

    def contains(self, point: tuple[float, float]) -> bool:
        """Whether ``point`` lies in the disc (boundary inclusive)."""
        return squared_euclidean(self.center, point) <= self.radius * self.radius

    def bounding_box(self) -> BoundingBox:
        """The smallest axis-aligned box containing the disc."""
        return BoundingBox(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def intersects_box(self, box: BoundingBox) -> bool:
        """Whether the disc intersects ``box`` (boundary inclusive)."""
        nearest_x = min(max(self.center.x, box.min_x), box.max_x)
        nearest_y = min(max(self.center.y, box.min_y), box.max_y)
        return squared_euclidean(self.center, (nearest_x, nearest_y)) <= self.radius * self.radius
