"""Points and distance metrics.

Locations in the paper are planar kilometre coordinates (the Chengdu frame
of Figure 3 spans roughly 120 km x 100 km after projection), so the default
metric everywhere is :func:`euclidean`.  :func:`haversine_km` is provided
for workloads expressed in raw longitude/latitude degrees.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.errors import InvalidInstanceError
import numpy as np

__all__ = [
    "Point",
    "euclidean",
    "squared_euclidean",
    "haversine_km",
    "pairwise_euclidean",
]

_EARTH_RADIUS_KM = 6371.0088


class Point(NamedTuple):
    """A 2-D location.

    ``Point`` is a :class:`typing.NamedTuple`, so it unpacks like a plain
    ``(x, y)`` tuple and is accepted anywhere the library expects a
    coordinate pair.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance from this point to ``other``."""
        return euclidean(self, other)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


def euclidean(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Euclidean distance between two coordinate pairs."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def squared_euclidean(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Squared Euclidean distance (avoids the square root in comparisons)."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def haversine_km(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Great-circle distance in kilometres between ``(lon, lat)`` degrees.

    Only used when a workload is expressed in raw geographic coordinates;
    the bundled generators all work in projected kilometre frames.
    """
    lon1, lat1 = math.radians(a[0]), math.radians(a[1])
    lon2, lat2 = math.radians(b[0]), math.radians(b[1])
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def pairwise_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs Euclidean distances between two point arrays.

    Parameters
    ----------
    a:
        Array of shape ``(m, 2)``.
    b:
        Array of shape ``(n, 2)``.

    Returns
    -------
    numpy.ndarray
        Matrix ``D`` of shape ``(m, n)`` with ``D[i, j] = ||a[i] - b[j]||``.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or a.shape[1] != 2:
        raise InvalidInstanceError(f"expected (m, 2) array for a, got shape {a.shape}")
    if b.ndim != 2 or b.shape[1] != 2:
        raise InvalidInstanceError(f"expected (n, 2) array for b, got shape {b.shape}")
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
