"""Equilibria, PoA/PoS, and the paper's Theorem VI.3 bounds.

For finite games we enumerate pure Nash equilibria exhaustively and
compute the (utilitarian) price of anarchy and stability.  For PA-TA
instances, :func:`theorem_vi3_bounds` evaluates the closed-form bounds of
Theorem VI.3::

    EPoA >= sum_i U+_min(i) / sum_i U+_max(i),     EPoS <= 1

with ``U^L_j(i) = v_i - f_d(d_ij) - f_p(sum of *all* budgets of w_j)``
(the worst case: every budget spent) and
``U^H_j(i) = v_i - f_d(d_ij) - f_p(min eps_ij)`` (the best case: one
cheapest proposal).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.game.strategic import NormalFormGame, Profile
from repro.simulation.instance import ProblemInstance

__all__ = [
    "pure_nash_equilibria",
    "price_of_anarchy",
    "price_of_stability",
    "theorem_vi3_bounds",
]


def pure_nash_equilibria(game: NormalFormGame, tol: float = 1e-9) -> list[Profile]:
    """All pure Nash equilibria, by exhaustive profile enumeration."""
    return [profile for profile in game.profiles() if game.is_nash(profile, tol)]


def price_of_anarchy(game: NormalFormGame, tol: float = 1e-9) -> float:
    """``opt welfare / worst equilibrium welfare`` (utilitarian).

    Raises
    ------
    ConfigurationError
        If the game has no pure Nash equilibrium or the worst equilibrium
        welfare is non-positive (the ratio is then meaningless).
    """
    equilibria = pure_nash_equilibria(game, tol)
    if not equilibria:
        raise ConfigurationError("game has no pure Nash equilibrium")
    optimum = max(game.welfare(p) for p in game.profiles())
    worst = min(game.welfare(p) for p in equilibria)
    if worst <= 0:
        raise ConfigurationError(f"worst equilibrium welfare {worst} is non-positive")
    return optimum / worst


def price_of_stability(game: NormalFormGame, tol: float = 1e-9) -> float:
    """``opt welfare / best equilibrium welfare`` (utilitarian)."""
    equilibria = pure_nash_equilibria(game, tol)
    if not equilibria:
        raise ConfigurationError("game has no pure Nash equilibrium")
    optimum = max(game.welfare(p) for p in game.profiles())
    best = max(game.welfare(p) for p in equilibria)
    if best <= 0:
        raise ConfigurationError(f"best equilibrium welfare {best} is non-positive")
    return optimum / best


def theorem_vi3_bounds(instance: ProblemInstance) -> tuple[float, float]:
    """The paper's (EPoA lower bound, EPoS upper bound) for an instance.

    Returns ``(sum U+_min / sum U+_max, 1.0)``.  The EPoA bound is 0 when
    no pair has a positive worst-case utility, and the function raises if
    ``sum U+_max`` is zero (the paper's proviso).
    """
    model = instance.model
    total_budget_of_worker = [0.0] * instance.num_workers
    for (i, j), vector in instance.budgets.items():
        total_budget_of_worker[j] += vector.total

    u_plus_min = 0.0
    u_plus_max = 0.0
    for i, task in enumerate(instance.tasks):
        low_candidates = []
        high_candidates = []
        for j in instance.candidates[i]:
            distance = instance.distance(i, j)
            u_low = model.utility(task.value, distance, total_budget_of_worker[j])
            u_high = model.utility(
                task.value, distance, min(instance.budget_vector(i, j).epsilons)
            )
            if u_low > 0:
                low_candidates.append(u_low)
            if u_high > 0:
                high_candidates.append(u_high)
        if low_candidates:
            u_plus_min += min(low_candidates)
        if high_candidates:
            u_plus_max += max(high_candidates)

    if u_plus_max == 0.0:
        raise ConfigurationError(
            "Theorem VI.3 bound undefined: sum of U+_max is zero"
        )
    return u_plus_min / u_plus_max, 1.0
