"""Exact-potential verification (Definition 7, Theorem VI.1).

``is_exact_potential`` checks the defining identity on every unilateral
deviation of a finite game; ``allocation_potential`` is the paper's
potential function for PAA-TA states::

    Phi = sum_{i,j} ( s_ij * (v_i - f_d(d~_ij)) - f_p(b_ij . eps_ij) )

i.e. total matched (approximate) utility minus everyone's published
budget — exactly what each accepted PGT move increases by its ``UT > 0``.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.result import AssignmentResult
from repro.game.strategic import NormalFormGame, Profile
from repro.simulation.instance import ProblemInstance

__all__ = ["is_exact_potential", "allocation_potential", "result_potential"]


def is_exact_potential(
    game: NormalFormGame,
    potential: Callable[[Profile], float],
    tol: float = 1e-9,
) -> bool:
    """Exhaustively verify the Definition 7 identity.

    For every profile, deviating player and replacement strategy:
    ``U_p(st') - U_p(st) == Phi(st') - Phi(st)`` within ``tol``.
    Exponential in players; intended for the small games in the test-suite.
    """
    for profile in game.profiles():
        base_phi = potential(profile)
        for player in range(game.num_players):
            base_u = game.utility(player, profile)
            for strategy in game.strategies(player):
                if strategy == profile[player]:
                    continue
                deviated = game.deviate(profile, player, strategy)
                du = game.utility(player, deviated) - base_u
                dphi = potential(deviated) - base_phi
                if abs(du - dphi) > tol:
                    return False
    return True


def allocation_potential(
    instance: ProblemInstance,
    allocation: Mapping[int, int],
    effective_distance: Callable[[int, int], float],
    total_spend: float,
) -> float:
    """The paper's potential ``Phi`` for a PAA-TA state.

    Parameters
    ----------
    allocation:
        ``{task_index: worker_index}`` of the matched pairs.
    effective_distance:
        ``(task_index, worker_index) -> d~_ij`` — the effective obfuscated
        distance of the pair (or the true distance for the non-private GT).
    total_spend:
        Sum of all published budgets ``sum_ij b_ij . eps_ij``.
    """
    model = instance.model
    matched_value = sum(
        instance.tasks[i].value - model.f_d(effective_distance(i, j))
        for i, j in allocation.items()
    )
    return matched_value - model.f_p(total_spend)


def result_potential(result: AssignmentResult, use_true_distance: bool = True) -> float:
    """``Phi`` of a finished run, from its matching and ledger.

    With ``use_true_distance`` the matched values use real distances (the
    measurable proxy — the effective distances of the final state are
    inside the solver); the *monotonicity* checks in the test-suite use the
    per-move gains recorded by
    :class:`repro.core.pgt.BestResponseStats` instead, which are exact.
    """
    instance = result.instance
    task_index_of = {t.id: idx for idx, t in enumerate(instance.tasks)}
    worker_index_of = {w.id: idx for idx, w in enumerate(instance.workers)}
    allocation = {
        task_index_of[t]: worker_index_of[w] for t, w in result.matching
    }
    return allocation_potential(
        instance,
        allocation,
        lambda i, j: instance.distance(i, j) if use_true_distance else 0.0,
        result.ledger.total_spend(),
    )
