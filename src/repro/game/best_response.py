"""Generic best-response dynamics over finite strategic games.

This is the analysis-grade counterpart of the production loop inside
:mod:`repro.core.pgt`: it works on any :class:`NormalFormGame`, records
the full improvement path, and is used by the tests to cross-check that
best response converges on exact potential games (Theorem VI.2) and can
cycle on games that are not potential games.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ConvergenceError
from repro.game.strategic import NormalFormGame, Profile

__all__ = ["BestResponsePath", "best_response_dynamics"]


@dataclass
class BestResponsePath:
    """The trajectory of one best-response run."""

    profiles: list[Profile] = field(default_factory=list)
    moves: list[tuple[int, object, float]] = field(default_factory=list)
    converged: bool = False

    @property
    def final(self) -> Profile:
        return self.profiles[-1]

    @property
    def num_moves(self) -> int:
        return len(self.moves)


def best_response_dynamics(
    game: NormalFormGame,
    initial: Profile,
    max_passes: int = 10_000,
    tol: float = 1e-9,
) -> BestResponsePath:
    """Round-robin best response from ``initial`` until no one improves.

    Each player in index order switches to a best response whenever it
    strictly improves his utility (by more than ``tol``).  Returns the
    path; raises :class:`ConvergenceError` after ``max_passes`` full passes
    without quiescence (which a non-potential game can trigger).
    """
    profile = tuple(initial)
    if len(profile) != game.num_players:
        raise ConfigurationError(
            f"profile has {len(profile)} entries for {game.num_players} players"
        )
    path = BestResponsePath(profiles=[profile])

    for _ in range(max_passes):
        moved = False
        for player in range(game.num_players):
            current_value = game.utility(player, profile)
            best = None
            best_value = current_value
            for strategy in game.strategies(player):
                if strategy == profile[player]:
                    continue
                value = game.utility(player, game.deviate(profile, player, strategy))
                if value > best_value + tol:
                    best = strategy
                    best_value = value
            if best is not None:
                gain = best_value - current_value
                profile = game.deviate(profile, player, best)
                path.profiles.append(profile)
                path.moves.append((player, best, gain))
                moved = True
        if not moved:
            path.converged = True
            return path
    raise ConvergenceError(
        f"best response did not converge within {max_passes} passes "
        "(is the game a potential game?)"
    )
