"""Game-theoretic substrate (Section VI).

PGT's correctness rests on PAA-TA being an *exact potential game*
(Definition 7, Theorem VI.1), whose best-response dynamics reach a pure
Nash equilibrium in at most a scaled-potential number of rounds
(Theorem VI.2) with EPoS/EPoA bounds (Theorem VI.3).  This subpackage
implements the general machinery from scratch — finite strategic games,
potential verification, best-response dynamics, equilibrium checks, and
PoA/PoS — plus the PAA-TA-specific potential and the Theorem VI.3 bounds.
"""

from repro.game.best_response import BestResponsePath, best_response_dynamics
from repro.game.equilibrium import (
    price_of_anarchy,
    price_of_stability,
    pure_nash_equilibria,
    theorem_vi3_bounds,
)
from repro.game.potential import (
    allocation_potential,
    is_exact_potential,
    result_potential,
)
from repro.game.strategic import NormalFormGame

__all__ = [
    "NormalFormGame",
    "is_exact_potential",
    "allocation_potential",
    "result_potential",
    "best_response_dynamics",
    "BestResponsePath",
    "pure_nash_equilibria",
    "price_of_anarchy",
    "price_of_stability",
    "theorem_vi3_bounds",
]
