"""Finite n-player strategic games in normal form.

A deliberately small, explicit representation: utilities are a callable of
``(player, profile)`` so games over combinatorial strategy spaces (like
PAA-TA restricted to small instances) don't need materialised payoff
tensors, while tests can still enumerate profiles exhaustively.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Hashable, Iterator

from repro.errors import ConfigurationError

__all__ = ["NormalFormGame"]

Strategy = Hashable
Profile = tuple[Strategy, ...]


@dataclass(frozen=True)
class NormalFormGame:
    """``G = <W, S, UT>``: players, finite strategy sets, utilities.

    Parameters
    ----------
    strategy_sets:
        One finite strategy tuple per player.
    utility:
        ``utility(player_index, profile) -> float``.
    """

    strategy_sets: tuple[tuple[Strategy, ...], ...]
    utility: Callable[[int, Profile], float]

    def __post_init__(self) -> None:
        if not self.strategy_sets:
            raise ConfigurationError("a game needs at least one player")
        if any(not s for s in self.strategy_sets):
            raise ConfigurationError("every player needs at least one strategy")

    @property
    def num_players(self) -> int:
        return len(self.strategy_sets)

    def strategies(self, player: int) -> tuple[Strategy, ...]:
        return self.strategy_sets[player]

    def profiles(self) -> Iterator[Profile]:
        """All strategy profiles (exponential; for small games/tests)."""
        return itertools.product(*self.strategy_sets)

    def num_profiles(self) -> int:
        count = 1
        for s in self.strategy_sets:
            count *= len(s)
        return count

    def deviate(self, profile: Profile, player: int, strategy: Strategy) -> Profile:
        """``(strategy, st_-player)``: the unilateral deviation."""
        mutated = list(profile)
        mutated[player] = strategy
        return tuple(mutated)

    def best_responses(self, player: int, profile: Profile) -> tuple[Strategy, ...]:
        """The player's utility-maximising strategies against ``st_-player``."""
        best: list[Strategy] = []
        best_value = -float("inf")
        for strategy in self.strategy_sets[player]:
            value = self.utility(player, self.deviate(profile, player, strategy))
            if value > best_value + 1e-12:
                best = [strategy]
                best_value = value
            elif abs(value - best_value) <= 1e-12:
                best.append(strategy)
        return tuple(best)

    def is_nash(self, profile: Profile, tol: float = 1e-9) -> bool:
        """Whether no player has a strictly improving unilateral deviation."""
        for player in range(self.num_players):
            current = self.utility(player, profile)
            for strategy in self.strategy_sets[player]:
                if strategy == profile[player]:
                    continue
                if self.utility(player, self.deviate(profile, player, strategy)) > current + tol:
                    return False
        return True

    def welfare(self, profile: Profile) -> float:
        """Utilitarian welfare: the sum of all players' utilities."""
        return sum(self.utility(p, profile) for p in range(self.num_players))
