"""Deterministic fault injection — failures as reproducible as results.

Every other stochastic choice in the library derives from a seed through
a stable key, so a run can be replayed bit-for-bit.  Faults get the same
treatment: a :class:`FaultPlan` decides whether a fault of some *kind*
fires at some *site* of some *flush* purely from
``(plan.seed, kind, site, key)`` — no global counters, no wall clock —
so a failure test replays exactly, including which retry attempt of
which flush sees the crash.

The plan is threaded explicitly where possible (``StreamConfig.faults``,
the :class:`~repro.stream.shards.ShardedFlushExecutor`); layers without
a config path (the cache snapshot loader, the service consumer) consult
the process-wide :func:`active_fault_plan`, settable in code
(:func:`set_fault_plan`, the :func:`fault_injection` context manager) or
via the ``REPRO_FAULTS`` environment variable (``smoke`` enables the
low-rate CI plan; a JSON object spells an explicit plan).

Fault kinds and their injection sites:

==================  =======================================================
``pool_crash``      :meth:`ShardedFlushExecutor._run_pooled` — the pool is
                    treated as broken before the submit (per attempt, so
                    the respawn/backoff path genuinely recovers).
``shm_attach``      shm staging/attach — the zero-copy transport fails and
                    the ladder falls back to the pickle payload.
``solver_timeout``  the pooled-solve watchdog — the flush times out as if
                    the solver hung, and the ladder degrades.
``snapshot_corrupt``
                    :meth:`FlushSolverCache.load` — the snapshot reads as
                    garbage and the cache starts cold (with a warning).
``queue_stall``     the service's per-tenant consumer — the request yields
                    the loop a few extra times before applying (observable
                    latency, never a changed result).
``worker_departure``
                    the simulator's flush path — one idle worker leaves
                    the fleet mid-stream (the churn workload family; the
                    one kind that intentionally changes results, so it is
                    **not** part of the smoke plan).
==================  =======================================================

Except for ``worker_departure``, injected faults are *masked* failures:
the degradation ladder and the journal guarantee the run completes with
results bit-identical to the fault-free run — only latency changes.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from repro.errors import ConfigurationError, InjectedFault
from repro.utils.rng import stable_hash

__all__ = [
    "FAULT_KINDS",
    "MASKED_FAULT_KINDS",
    "FaultPlan",
    "smoke_plan",
    "plan_from_env",
    "active_fault_plan",
    "set_fault_plan",
    "fault_injection",
]

#: Every fault kind a plan may rate.  The single source of truth — the
#: executor, simulator, cache and service sites all spell these strings.
FAULT_KINDS = (
    "pool_crash",
    "shm_attach",
    "solver_timeout",
    "snapshot_corrupt",
    "queue_stall",
    "worker_departure",
)

#: Kinds whose injection is guaranteed result-preserving (the ladder /
#: journal masks them).  ``worker_departure`` is excluded: removing a
#: worker legitimately changes the dispatch outcome.
MASKED_FAULT_KINDS = (
    "pool_crash",
    "shm_attach",
    "solver_timeout",
    "snapshot_corrupt",
    "queue_stall",
)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of injected faults.

    ``rates`` maps fault kinds to firing probabilities in ``[0, 1]``;
    kinds absent from the mapping never fire.  Whether a given
    ``(kind, site, key)`` triple fires is a pure function of the plan —
    the uniform draw comes from ``default_rng`` seeded with
    ``(seed, hash(kind), hash(site), *key)`` — so retries, other sites
    and other flushes are independent, yet every run of the same plan
    sees the same faults in the same places.
    """

    seed: int = 0
    rates: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rates", dict(self.rates))
        unknown = sorted(set(self.rates) - set(FAULT_KINDS))
        if unknown:
            raise ConfigurationError(
                f"unknown fault kind(s) {unknown}; valid: {sorted(FAULT_KINDS)}"
            )
        for kind, rate in self.rates.items():
            if not 0.0 <= float(rate) <= 1.0:
                raise ConfigurationError(
                    f"fault rate for {kind!r} must be in [0, 1], got {rate}"
                )

    # -- (de)serialisation --------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "FaultPlan":
        """Build from a plain dict (JSON), rejecting unknown keys."""
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(mapping) - valid)
        if unknown:
            raise ConfigurationError(
                f"unknown fault-plan key(s) {unknown}; valid: {sorted(valid)}"
            )
        return cls(**dict(mapping))

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict that :meth:`from_mapping` round-trips."""
        return {"seed": self.seed, "rates": dict(self.rates)}

    @classmethod
    def resolve(cls, spec: "FaultPlan | Mapping[str, Any] | str | None"):
        """Normalise a user-facing fault spec to a plan (or ``None``).

        Accepts a ready plan, a :meth:`to_dict` mapping, the string
        ``"smoke"`` (the CI plan), ``"off"``/``""`` (no injection), or a
        JSON object string.  This is the one place every config surface
        (options, CLI flags, the environment variable) converges.
        """
        if spec is None or isinstance(spec, cls):
            return spec
        if isinstance(spec, Mapping):
            return cls.from_mapping(spec)
        if isinstance(spec, str):
            text = spec.strip()
            if text in ("", "off", "none"):
                return None
            if text == "smoke":
                return smoke_plan()
            if text.startswith("{"):
                try:
                    return cls.from_mapping(json.loads(text))
                except (json.JSONDecodeError, TypeError) as exc:
                    raise ConfigurationError(
                        f"fault plan JSON is invalid: {exc}"
                    ) from exc
            raise ConfigurationError(
                f"unknown fault spec {spec!r}; use 'smoke', 'off', "
                f"or a JSON object"
            )
        raise ConfigurationError(
            f"fault spec must be a FaultPlan, mapping, string or None, "
            f"got {type(spec).__name__}"
        )

    # -- firing -------------------------------------------------------------

    def should_fire(
        self, kind: str, key: tuple[int, ...] = (), site: str = ""
    ) -> bool:
        """Whether the fault fires at ``(kind, site, key)`` — deterministic."""
        if kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; valid: {sorted(FAULT_KINDS)}"
            )
        rate = float(self.rates.get(kind, 0.0))
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        entropy = (
            self.seed,
            stable_hash(kind),
            stable_hash(site),
            *(int(k) for k in key),
        )
        return float(np.random.default_rng(entropy).random()) < rate

    def fire(self, kind: str, key: tuple[int, ...] = (), site: str = "") -> None:
        """Raise :class:`~repro.errors.InjectedFault` if the fault fires."""
        if self.should_fire(kind, key, site):
            raise InjectedFault(
                f"injected {kind} fault at site {site!r} key {key}",
                kind=kind,
                site=site,
            )


def smoke_plan() -> FaultPlan:
    """The CI fault-injection plan (``REPRO_FAULTS=smoke``).

    Low-rate, *masked* kinds only: pool crashes, shm failures and
    watchdog timeouts are absorbed by the degradation ladder, and
    consumer stalls only add loop yields — so the whole tier-1 suite
    must still pass bit-identically underneath it.
    """
    return FaultPlan(
        seed=0xFA017,
        rates={
            "pool_crash": 0.05,
            "shm_attach": 0.05,
            "solver_timeout": 0.02,
            "queue_stall": 0.02,
        },
    )


def plan_from_env() -> FaultPlan | None:
    """The plan named by ``REPRO_FAULTS`` (``None`` when unset/off)."""
    return FaultPlan.resolve(os.environ.get("REPRO_FAULTS"))


#: The explicitly-activated process-wide plan (overrides the environment).
_ACTIVE: FaultPlan | None = None
_ACTIVE_SET = False


def active_fault_plan() -> FaultPlan | None:
    """The process-wide plan: explicit activation first, then the env."""
    if _ACTIVE_SET:
        return _ACTIVE
    return plan_from_env()


def set_fault_plan(plan: "FaultPlan | Mapping[str, Any] | str | None") -> None:
    """Activate (or with ``None``, deactivate) the process-wide plan."""
    global _ACTIVE, _ACTIVE_SET
    resolved = FaultPlan.resolve(plan)
    _ACTIVE = resolved
    _ACTIVE_SET = resolved is not None


@contextlib.contextmanager
def fault_injection(
    plan: "FaultPlan | Mapping[str, Any] | str | None",
) -> Iterator[FaultPlan | None]:
    """Scope a process-wide plan to a ``with`` block (tests, benches)."""
    global _ACTIVE, _ACTIVE_SET
    previous = (_ACTIVE, _ACTIVE_SET)
    resolved = FaultPlan.resolve(plan)
    _ACTIVE = resolved
    _ACTIVE_SET = True
    try:
        yield resolved
    finally:
        _ACTIVE, _ACTIVE_SET = previous
