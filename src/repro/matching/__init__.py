"""Bipartite matching substrate.

The paper frames PA-TA as one-to-one bipartite matching (Definition 8) and
names the Hungarian algorithm as the exact solver a trusted platform would
use (Section V).  This subpackage implements:

* :mod:`repro.matching.hungarian` -- Kuhn-Munkres with potentials, built
  from scratch (no scipy), plus a maximum-weight partial matcher,
* :mod:`repro.matching.greedy`    -- the greedy matcher behind the GRD
  baseline,
* :mod:`repro.matching.bipartite` -- matching containers and validation.
"""

from repro.matching.bipartite import Matching
from repro.matching.greedy import greedy_max_weight
from repro.matching.hungarian import linear_sum_assignment, max_weight_matching

__all__ = [
    "Matching",
    "greedy_max_weight",
    "linear_sum_assignment",
    "max_weight_matching",
]
