"""Greedy maximum-weight matching (the GRD baseline of Table IX).

GRD "always greedily chooses the current best worker-task pair (with the
highest utility)": sort all eligible pairs by weight and accept a pair when
both endpoints are still free.
"""

from __future__ import annotations

import math
from typing import Mapping

__all__ = ["greedy_max_weight"]


def greedy_max_weight(
    weights: Mapping[tuple[int, int], float],
    min_weight: float = 0.0,
) -> dict[int, int]:
    """Greedy one-to-one matching over a sparse weight map.

    Parameters
    ----------
    weights:
        ``{(row, col): weight}`` for the eligible pairs only.
    min_weight:
        Pairs with weight ``<= min_weight`` are never taken (the paper's
        convention: a non-positive-utility pair is not formed).

    Returns
    -------
    dict
        ``{row: col}``.  Deterministic: ties broken by ``(row, col)``.
    """
    edges = [
        (w, r, c)
        for (r, c), w in weights.items()
        if math.isfinite(w) and w > min_weight
    ]
    edges.sort(key=lambda e: (-e[0], e[1], e[2]))
    taken_rows: set[int] = set()
    taken_cols: set[int] = set()
    match: dict[int, int] = {}
    for weight, row, col in edges:
        if row in taken_rows or col in taken_cols:
            continue
        match[row] = col
        taken_rows.add(row)
        taken_cols.add(col)
    return match
