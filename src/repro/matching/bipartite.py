"""Matching containers and one-to-one validation (Definition 8)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping

from repro.errors import MatchingError

__all__ = ["Matching"]

TaskId = Hashable
WorkerId = Hashable


@dataclass(frozen=True)
class Matching:
    """A one-to-one assignment of tasks to workers.

    Stored task-major (``{task_id: worker_id}``) to mirror the paper's
    allocation list ``AL``.  Construction validates the one-to-one property
    of Definition 8: no worker appears twice.
    """

    pairs: Mapping[TaskId, WorkerId]
    _worker_to_task: dict[WorkerId, TaskId] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        inverse: dict[WorkerId, TaskId] = {}
        for task_id, worker_id in self.pairs.items():
            if worker_id in inverse:
                raise MatchingError(
                    f"worker {worker_id!r} assigned to both task "
                    f"{inverse[worker_id]!r} and task {task_id!r}"
                )
            inverse[worker_id] = task_id
        object.__setattr__(self, "pairs", dict(self.pairs))
        object.__setattr__(self, "_worker_to_task", inverse)

    @classmethod
    def empty(cls) -> "Matching":
        return cls({})

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[tuple[TaskId, WorkerId]]:
        return iter(self.pairs.items())

    def __contains__(self, task_id: TaskId) -> bool:
        return task_id in self.pairs

    def worker_of(self, task_id: TaskId) -> WorkerId | None:
        """Worker matched to ``task_id``, or ``None``."""
        return self.pairs.get(task_id)

    def task_of(self, worker_id: WorkerId) -> TaskId | None:
        """Task matched to ``worker_id``, or ``None``."""
        return self._worker_to_task.get(worker_id)

    def total_weight(self, weights: Mapping[tuple[TaskId, WorkerId], float]) -> float:
        """Sum of ``weights`` over the matched pairs.

        Raises
        ------
        MatchingError
            If a matched pair has no weight entry — that indicates the
            matching strayed outside the instance's feasible pairs.
        """
        total = 0.0
        for task_id, worker_id in self.pairs.items():
            key = (task_id, worker_id)
            if key not in weights:
                raise MatchingError(f"matched pair {key!r} has no weight entry")
            total += weights[key]
        return total

    def restricted_to(self, task_ids: set[TaskId]) -> "Matching":
        """The sub-matching covering only ``task_ids``."""
        return Matching({t: w for t, w in self.pairs.items() if t in task_ids})
