"""Kuhn-Munkres (Hungarian) assignment, implemented from scratch.

The solver is the classical O(n^2 m) successive-shortest-augmenting-path
formulation with dual potentials.  Two entry points are provided:

* :func:`linear_sum_assignment` -- scipy-compatible: a complete assignment
  of the smaller side of a rectangular cost matrix.  ``inf`` entries mark
  forbidden pairs; infeasibility raises
  :class:`repro.errors.MatchingError`.
* :func:`max_weight_matching` -- maximum-total-weight *partial* matching:
  rows may stay unmatched when every remaining weight is non-positive or
  forbidden.  This is the form PA-TA's objective takes (a worker with no
  profitable task stays idle), implemented by padding with zero-weight
  dummy columns.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import MatchingError

__all__ = ["linear_sum_assignment", "max_weight_matching"]


def _solve_rows_leq_cols(cost: np.ndarray) -> list[int]:
    """Minimum-cost complete assignment for an ``n x m`` matrix, ``n <= m``.

    Returns ``col_of_row``: for each row the assigned column index.
    ``math.inf`` entries are forbidden; an unassignable row raises
    :class:`MatchingError`.
    """
    n, m = cost.shape
    # 1-based potentials, as in the classical formulation.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)  # p[j] = row matched to column j (0 = free)
    way = [0] * (m + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [math.inf] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = math.inf
            j1 = -1
            row = cost[i0 - 1]
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = row[j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            if not math.isfinite(delta):
                raise MatchingError(
                    f"no feasible complete assignment: row {i - 1} cannot reach a free column"
                )
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    col_of_row = [-1] * n
    for j in range(1, m + 1):
        if p[j]:
            col_of_row[p[j] - 1] = j - 1
    if any(c < 0 for c in col_of_row):
        raise MatchingError("internal error: incomplete assignment")
    return col_of_row


def linear_sum_assignment(
    cost: np.ndarray, maximize: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Optimal complete assignment of the smaller side of ``cost``.

    Mirrors :func:`scipy.optimize.linear_sum_assignment`: returns sorted row
    indices and their assigned columns.  Entries of ``math.inf`` (or
    ``-inf`` when maximizing) are forbidden pairs.

    Raises
    ------
    MatchingError
        If no complete assignment of the smaller side avoids forbidden
        pairs.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise MatchingError(f"cost must be 2-D, got shape {cost.shape}")
    if cost.size == 0:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)
    if np.isnan(cost).any():
        raise MatchingError("cost matrix contains NaN")
    work = -cost if maximize else cost.copy()
    # Forbidden pairs arrive as +inf in the minimisation view.
    transposed = work.shape[0] > work.shape[1]
    if transposed:
        work = work.T
    col_of_row = _solve_rows_leq_cols(work)
    rows = np.arange(len(col_of_row))
    cols = np.asarray(col_of_row)
    if transposed:
        rows, cols = cols, rows
        order = np.argsort(rows)
        rows, cols = rows[order], cols[order]
    return rows, cols


def max_weight_matching(weights: np.ndarray, allow_negative: bool = False) -> dict[int, int]:
    """Maximum-total-weight partial matching of rows to columns.

    Parameters
    ----------
    weights:
        ``(n, m)`` weight matrix; ``-inf`` (or NaN) marks a forbidden pair.
    allow_negative:
        When ``False`` (default) a row is left unmatched rather than take a
        negative-weight edge — the PA-TA convention that an unprofitable
        pair is never formed.  When ``True``, only ``-inf`` pairs are
        excluded and a complete-as-possible matching is returned.

    Returns
    -------
    dict
        ``{row: column}`` for the matched rows.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise MatchingError(f"weights must be 2-D, got shape {weights.shape}")
    n, m = weights.shape
    if n == 0 or m == 0:
        return {}

    eligible = np.isfinite(weights)
    if not allow_negative:
        eligible &= weights > 0.0

    # Pad with n per-row dummy columns so every row is assignable.  With
    # allow_negative=False, skipping a row costs exactly zero, so a row is
    # matched iff it improves the total.  With allow_negative=True the
    # dummies are priced above every real edge, so rows skip only when all
    # their real pairs are forbidden.
    skip_cost = 0.0
    if allow_negative and eligible.any():
        skip_cost = float(np.abs(weights[eligible]).sum()) + 1.0
    cost = np.full((n, m + n), math.inf)
    cost[:, :m] = np.where(eligible, -weights, math.inf)
    for i in range(n):
        cost[i, m + i] = skip_cost

    col_of_row = _solve_rows_leq_cols(cost)
    return {i: j for i, j in enumerate(col_of_row) if j < m}
